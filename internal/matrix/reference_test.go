package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomGemm(t *testing.T, seed int64, maxDim int) (a, b, c *Matrix[float64]) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m, n, k := 1+rng.Intn(maxDim), 1+rng.Intn(maxDim), 1+rng.Intn(maxDim)
	a = New[float64](m, k)
	b = New[float64](k, n)
	c = New[float64](m, n)
	a.Randomize(rng)
	b.Randomize(rng)
	c.Randomize(rng) // nonzero C exercises the accumulate contract
	return
}

func TestNaiveGemmKnownValues(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	c := New[float64](2, 2)
	NaiveGemm(c, a, b)
	want := FromSlice(2, 2, []float64{19, 22, 43, 50})
	if !c.Equal(want) {
		t.Fatalf("got %v want %v", c, want)
	}
}

func TestNaiveGemmAccumulates(t *testing.T) {
	a := FromSlice(1, 1, []float64{2})
	b := FromSlice(1, 1, []float64{3})
	c := FromSlice(1, 1, []float64{10})
	NaiveGemm(c, a, b)
	if c.At(0, 0) != 16 {
		t.Fatalf("got %v want 16 (C += A*B)", c.At(0, 0))
	}
}

func TestNaiveGemmIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New[float64](5, 5)
	a.Randomize(rng)
	id := New[float64](5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	c := New[float64](5, 5)
	NaiveGemm(c, a, id)
	if !c.AlmostEqual(a, 5, 1e-14) {
		t.Fatal("A x I != A")
	}
}

func TestOuterProductMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		a, b, c := randomGemm(t, seed, 12)
		c2 := c.Clone()
		NaiveGemm(c, a, b)
		OuterProductGemm(c2, a, b)
		return c.AlmostEqual(c2, a.Cols, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockedMatchesNaiveAllBlockSizes(t *testing.T) {
	for _, bs := range []int{1, 2, 3, 5, 7, 16} {
		f := func(seed int64) bool {
			a, b, c := randomGemm(t, seed, 10)
			c2 := c.Clone()
			NaiveGemm(c, a, b)
			BlockedGemm(c2, a, b, bs)
			return c.AlmostEqual(c2, a.Cols, 1e-12)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Fatalf("bs=%d: %v", bs, err)
		}
	}
}

func TestBlockedGemmBadBlockSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BlockedGemm(New[float64](1, 1), New[float64](1, 1), New[float64](1, 1), 0)
}

func TestGemmOnViews(t *testing.T) {
	// Multiply sub-matrices through views; result must land only in the
	// viewed region of C.
	rng := rand.New(rand.NewSource(7))
	a := New[float32](8, 8)
	b := New[float32](8, 8)
	c := New[float32](8, 8)
	a.Randomize(rng)
	b.Randomize(rng)
	av := a.View(2, 1, 3, 4)
	bv := b.View(1, 3, 4, 2)
	cv := c.View(4, 5, 3, 2)
	NaiveGemm(cv, av, bv)

	// Reference: extract compact copies.
	ref := New[float32](3, 2)
	NaiveGemm(ref, av.Clone(), bv.Clone())
	if !cv.Clone().AlmostEqual(ref, 4, 1e-5) {
		t.Fatal("view GEMM wrong")
	}
	if c.At(0, 0) != 0 || c.At(7, 0) != 0 {
		t.Fatal("view GEMM wrote outside target region")
	}
}

func TestGemmLinearity(t *testing.T) {
	// (A1+A2)B == A1*B + A2*B — a structural property quick can explore.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a1, a2 := New[float64](m, k), New[float64](m, k)
		b := New[float64](k, n)
		a1.Randomize(rng)
		a2.Randomize(rng)
		b.Randomize(rng)

		sum := New[float64](m, k)
		for i := range sum.Data {
			sum.Data[i] = a1.Data[i] + a2.Data[i]
		}
		c1 := New[float64](m, n)
		NaiveGemm(c1, sum, b)
		c2 := New[float64](m, n)
		NaiveGemm(c2, a1, b)
		NaiveGemm(c2, a2, b)
		return c1.AlmostEqual(c2, k, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGemmFlops(t *testing.T) {
	if f := GemmFlops(10, 20, 30); f != 12000 {
		t.Fatalf("GemmFlops=%v want 12000", f)
	}
	if f := GemmFlops(23040, 23040, 23040); f <= 0 {
		t.Fatal("GemmFlops must not overflow for paper-sized inputs")
	}
}
