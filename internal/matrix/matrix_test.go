package matrix

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New[float32](3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 {
		t.Fatalf("bad shape: %+v", m)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) not zero", i, j)
			}
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dims")
		}
	}()
	New[float64](-1, 2)
}

func TestFromSlice(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, d)
	if m.At(1, 2) != 6 || m.At(0, 1) != 2 {
		t.Fatalf("FromSlice layout wrong: %v", m)
	}
	m.Set(0, 0, 9)
	if d[0] != 9 {
		t.Fatal("FromSlice must not copy")
	}
}

func TestFromSliceLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong slice length")
		}
	}()
	FromSlice(2, 3, []float32{1, 2, 3})
}

func TestSetAtAdd(t *testing.T) {
	m := New[float32](2, 2)
	m.Set(1, 0, 2.5)
	m.Add(1, 0, 1.5)
	if m.At(1, 0) != 4 {
		t.Fatalf("got %v want 4", m.At(1, 0))
	}
}

func TestViewSharesStorage(t *testing.T) {
	m := New[float64](4, 5)
	v := m.View(1, 2, 2, 2)
	v.Set(0, 0, 7)
	if m.At(1, 2) != 7 {
		t.Fatal("view does not alias parent storage")
	}
	if v.Stride != m.Stride {
		t.Fatalf("view stride %d != parent stride %d", v.Stride, m.Stride)
	}
}

func TestViewClipsAtEdges(t *testing.T) {
	m := New[float32](4, 5)
	v := m.View(3, 4, 10, 10)
	if v.Rows != 1 || v.Cols != 1 {
		t.Fatalf("expected clipped 1x1 view, got %dx%d", v.Rows, v.Cols)
	}
	// A view touching the last element must not overrun Data.
	v.Set(0, 0, 1)
	if m.At(3, 4) != 1 {
		t.Fatal("clipped view writes wrong location")
	}
}

func TestViewEmpty(t *testing.T) {
	m := New[float32](4, 5)
	v := m.View(4, 5, 3, 3)
	if v.Rows != 0 || v.Cols != 0 {
		t.Fatalf("expected empty view, got %dx%d", v.Rows, v.Cols)
	}
}

func TestViewOutOfBoundsPanics(t *testing.T) {
	m := New[float32](4, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for origin past bounds")
		}
	}()
	m.View(5, 0, 1, 1)
}

func TestCloneIsDeep(t *testing.T) {
	m := New[float64](3, 3)
	m.FillFunc(func(i, j int) float64 { return float64(i*3 + j) })
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Fatal("Clone shares storage")
	}
	if !c.View(0, 1, 3, 2).Equal(m.View(0, 1, 3, 2)) {
		t.Fatal("Clone content differs")
	}
}

func TestCloneOfViewIsCompact(t *testing.T) {
	m := New[float64](4, 6)
	m.FillFunc(func(i, j int) float64 { return float64(i*10 + j) })
	v := m.View(1, 2, 2, 3)
	c := v.Clone()
	if !c.IsCompact() {
		t.Fatal("clone of view should be compact")
	}
	if c.At(1, 2) != m.At(2, 4) {
		t.Fatal("clone of view has wrong content")
	}
}

func TestCopyFrom(t *testing.T) {
	src := New[float32](2, 3)
	src.Fill(5)
	dst := New[float32](4, 4)
	dst.View(1, 1, 2, 3).CopyFrom(src)
	if dst.At(2, 3) != 5 || dst.At(0, 0) != 0 {
		t.Fatal("CopyFrom into view wrote wrong region")
	}
}

func TestCopyFromShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[float32](2, 2).CopyFrom(New[float32](2, 3))
}

func TestZeroOnView(t *testing.T) {
	m := New[float32](3, 3)
	m.Fill(1)
	m.View(1, 1, 2, 2).Zero()
	if m.At(0, 0) != 1 || m.At(1, 1) != 0 || m.At(2, 2) != 0 || m.At(1, 0) != 1 {
		t.Fatal("Zero on view cleared wrong elements")
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	want := FromSlice(3, 2, []float64{1, 4, 2, 5, 3, 6})
	if !tr.Equal(want) {
		t.Fatalf("transpose wrong: %v", tr)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New[float64](1+rng.Intn(8), 1+rng.Intn(8))
		m.Randomize(rng)
		return m.Transpose().Transpose().Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualAndAlmostEqual(t *testing.T) {
	a := New[float32](2, 2)
	b := New[float32](2, 2)
	if !a.Equal(b) {
		t.Fatal("zero matrices must be equal")
	}
	b.Set(1, 1, 1e-5)
	if a.Equal(b) {
		t.Fatal("Equal must be exact")
	}
	if !a.AlmostEqual(b, 1, 1e-4) {
		t.Fatal("AlmostEqual should accept small diff")
	}
	if a.AlmostEqual(b, 1, 1e-6) {
		t.Fatal("AlmostEqual should reject large diff")
	}
	if a.AlmostEqual(New[float32](2, 3), 1, 1) {
		t.Fatal("AlmostEqual must reject shape mismatch")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{1, 4, 2.5})
	if d := a.MaxAbsDiff(b); d != 2 {
		t.Fatalf("MaxAbsDiff=%v want 2", d)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m := FromSlice(1, 2, []float64{3, 4})
	if n := m.FrobeniusNorm(); n != 5 {
		t.Fatalf("norm=%v want 5", n)
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	small := New[float32](2, 2)
	if !strings.Contains(small.String(), "Matrix[2x2]") {
		t.Fatalf("small String: %q", small.String())
	}
	large := New[float32](20, 20)
	if !strings.Contains(large.String(), "Matrix[20x20") {
		t.Fatalf("large String: %q", large.String())
	}
}

func TestRowAliases(t *testing.T) {
	m := New[float64](3, 4)
	r := m.Row(2)
	r[3] = 42
	if m.At(2, 3) != 42 {
		t.Fatal("Row must alias storage")
	}
	if len(r) != 4 {
		t.Fatalf("Row length %d want 4", len(r))
	}
}

func TestIsCompact(t *testing.T) {
	m := New[float32](3, 4)
	if !m.IsCompact() {
		t.Fatal("fresh matrix should be compact")
	}
	if m.View(0, 0, 3, 2).IsCompact() {
		t.Fatal("interior view should not be compact")
	}
	if !m.View(1, 0, 1, 2).IsCompact() {
		t.Fatal("single-row view counts as compact")
	}
}

func TestCheckMulPanics(t *testing.T) {
	a := New[float32](2, 3)
	b := New[float32](4, 5) // inner dim mismatch
	c := New[float32](2, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad GEMM dims")
		}
	}()
	CheckMul(c, a, b)
}
