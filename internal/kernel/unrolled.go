package kernel

import "repro/internal/matrix"

// Hand-unrolled microkernels. Accumulators live in fixed-size local arrays
// so the compiler can keep them out of memory for the duration of the k
// loop; the single write-back at the end touches each C element once, which
// is the register-blocking contract the paper's Figure 5e/6e tile MM relies
// on.

//cake:hotpath
func kernel8x8[T matrix.Scalar](kc int, a, b []T, c []T, ldc int) {
	var c0, c1, c2, c3, c4, c5, c6, c7 [8]T
	for k := 0; k < kc; k++ {
		ak := a[k*8 : k*8+8 : k*8+8]
		bk := b[k*8 : k*8+8 : k*8+8]
		b0, b1, b2, b3 := bk[0], bk[1], bk[2], bk[3]
		b4, b5, b6, b7 := bk[4], bk[5], bk[6], bk[7]

		ai := ak[0]
		c0[0] += ai * b0
		c0[1] += ai * b1
		c0[2] += ai * b2
		c0[3] += ai * b3
		c0[4] += ai * b4
		c0[5] += ai * b5
		c0[6] += ai * b6
		c0[7] += ai * b7
		ai = ak[1]
		c1[0] += ai * b0
		c1[1] += ai * b1
		c1[2] += ai * b2
		c1[3] += ai * b3
		c1[4] += ai * b4
		c1[5] += ai * b5
		c1[6] += ai * b6
		c1[7] += ai * b7
		ai = ak[2]
		c2[0] += ai * b0
		c2[1] += ai * b1
		c2[2] += ai * b2
		c2[3] += ai * b3
		c2[4] += ai * b4
		c2[5] += ai * b5
		c2[6] += ai * b6
		c2[7] += ai * b7
		ai = ak[3]
		c3[0] += ai * b0
		c3[1] += ai * b1
		c3[2] += ai * b2
		c3[3] += ai * b3
		c3[4] += ai * b4
		c3[5] += ai * b5
		c3[6] += ai * b6
		c3[7] += ai * b7
		ai = ak[4]
		c4[0] += ai * b0
		c4[1] += ai * b1
		c4[2] += ai * b2
		c4[3] += ai * b3
		c4[4] += ai * b4
		c4[5] += ai * b5
		c4[6] += ai * b6
		c4[7] += ai * b7
		ai = ak[5]
		c5[0] += ai * b0
		c5[1] += ai * b1
		c5[2] += ai * b2
		c5[3] += ai * b3
		c5[4] += ai * b4
		c5[5] += ai * b5
		c5[6] += ai * b6
		c5[7] += ai * b7
		ai = ak[6]
		c6[0] += ai * b0
		c6[1] += ai * b1
		c6[2] += ai * b2
		c6[3] += ai * b3
		c6[4] += ai * b4
		c6[5] += ai * b5
		c6[6] += ai * b6
		c6[7] += ai * b7
		ai = ak[7]
		c7[0] += ai * b0
		c7[1] += ai * b1
		c7[2] += ai * b2
		c7[3] += ai * b3
		c7[4] += ai * b4
		c7[5] += ai * b5
		c7[6] += ai * b6
		c7[7] += ai * b7
	}
	rows := [8]*[8]T{&c0, &c1, &c2, &c3, &c4, &c5, &c6, &c7}
	for i, r := range rows {
		ci := c[i*ldc : i*ldc+8]
		ci[0] += r[0]
		ci[1] += r[1]
		ci[2] += r[2]
		ci[3] += r[3]
		ci[4] += r[4]
		ci[5] += r[5]
		ci[6] += r[6]
		ci[7] += r[7]
	}
}

//cake:hotpath
func kernel6x8[T matrix.Scalar](kc int, a, b []T, c []T, ldc int) {
	var c0, c1, c2, c3, c4, c5 [8]T
	for k := 0; k < kc; k++ {
		ak := a[k*6 : k*6+6 : k*6+6]
		bk := b[k*8 : k*8+8 : k*8+8]
		b0, b1, b2, b3 := bk[0], bk[1], bk[2], bk[3]
		b4, b5, b6, b7 := bk[4], bk[5], bk[6], bk[7]

		ai := ak[0]
		c0[0] += ai * b0
		c0[1] += ai * b1
		c0[2] += ai * b2
		c0[3] += ai * b3
		c0[4] += ai * b4
		c0[5] += ai * b5
		c0[6] += ai * b6
		c0[7] += ai * b7
		ai = ak[1]
		c1[0] += ai * b0
		c1[1] += ai * b1
		c1[2] += ai * b2
		c1[3] += ai * b3
		c1[4] += ai * b4
		c1[5] += ai * b5
		c1[6] += ai * b6
		c1[7] += ai * b7
		ai = ak[2]
		c2[0] += ai * b0
		c2[1] += ai * b1
		c2[2] += ai * b2
		c2[3] += ai * b3
		c2[4] += ai * b4
		c2[5] += ai * b5
		c2[6] += ai * b6
		c2[7] += ai * b7
		ai = ak[3]
		c3[0] += ai * b0
		c3[1] += ai * b1
		c3[2] += ai * b2
		c3[3] += ai * b3
		c3[4] += ai * b4
		c3[5] += ai * b5
		c3[6] += ai * b6
		c3[7] += ai * b7
		ai = ak[4]
		c4[0] += ai * b0
		c4[1] += ai * b1
		c4[2] += ai * b2
		c4[3] += ai * b3
		c4[4] += ai * b4
		c4[5] += ai * b5
		c4[6] += ai * b6
		c4[7] += ai * b7
		ai = ak[5]
		c5[0] += ai * b0
		c5[1] += ai * b1
		c5[2] += ai * b2
		c5[3] += ai * b3
		c5[4] += ai * b4
		c5[5] += ai * b5
		c5[6] += ai * b6
		c5[7] += ai * b7
	}
	rows := [6]*[8]T{&c0, &c1, &c2, &c3, &c4, &c5}
	for i, r := range rows {
		ci := c[i*ldc : i*ldc+8]
		for j := 0; j < 8; j++ {
			ci[j] += r[j]
		}
	}
}

//cake:hotpath
func kernel4x8[T matrix.Scalar](kc int, a, b []T, c []T, ldc int) {
	var c0, c1, c2, c3 [8]T
	for k := 0; k < kc; k++ {
		ak := a[k*4 : k*4+4 : k*4+4]
		bk := b[k*8 : k*8+8 : k*8+8]
		b0, b1, b2, b3 := bk[0], bk[1], bk[2], bk[3]
		b4, b5, b6, b7 := bk[4], bk[5], bk[6], bk[7]

		ai := ak[0]
		c0[0] += ai * b0
		c0[1] += ai * b1
		c0[2] += ai * b2
		c0[3] += ai * b3
		c0[4] += ai * b4
		c0[5] += ai * b5
		c0[6] += ai * b6
		c0[7] += ai * b7
		ai = ak[1]
		c1[0] += ai * b0
		c1[1] += ai * b1
		c1[2] += ai * b2
		c1[3] += ai * b3
		c1[4] += ai * b4
		c1[5] += ai * b5
		c1[6] += ai * b6
		c1[7] += ai * b7
		ai = ak[2]
		c2[0] += ai * b0
		c2[1] += ai * b1
		c2[2] += ai * b2
		c2[3] += ai * b3
		c2[4] += ai * b4
		c2[5] += ai * b5
		c2[6] += ai * b6
		c2[7] += ai * b7
		ai = ak[3]
		c3[0] += ai * b0
		c3[1] += ai * b1
		c3[2] += ai * b2
		c3[3] += ai * b3
		c3[4] += ai * b4
		c3[5] += ai * b5
		c3[6] += ai * b6
		c3[7] += ai * b7
	}
	rows := [4]*[8]T{&c0, &c1, &c2, &c3}
	for i, r := range rows {
		ci := c[i*ldc : i*ldc+8]
		for j := 0; j < 8; j++ {
			ci[j] += r[j]
		}
	}
}

//cake:hotpath
func kernel4x4[T matrix.Scalar](kc int, a, b []T, c []T, ldc int) {
	var c0, c1, c2, c3 [4]T
	for k := 0; k < kc; k++ {
		ak := a[k*4 : k*4+4 : k*4+4]
		bk := b[k*4 : k*4+4 : k*4+4]
		b0, b1, b2, b3 := bk[0], bk[1], bk[2], bk[3]

		ai := ak[0]
		c0[0] += ai * b0
		c0[1] += ai * b1
		c0[2] += ai * b2
		c0[3] += ai * b3
		ai = ak[1]
		c1[0] += ai * b0
		c1[1] += ai * b1
		c1[2] += ai * b2
		c1[3] += ai * b3
		ai = ak[2]
		c2[0] += ai * b0
		c2[1] += ai * b1
		c2[2] += ai * b2
		c2[3] += ai * b3
		ai = ak[3]
		c3[0] += ai * b0
		c3[1] += ai * b1
		c3[2] += ai * b2
		c3[3] += ai * b3
	}
	rows := [4]*[4]T{&c0, &c1, &c2, &c3}
	for i, r := range rows {
		ci := c[i*ldc : i*ldc+4]
		ci[0] += r[0]
		ci[1] += r[1]
		ci[2] += r[2]
		ci[3] += r[3]
	}
}

//cake:hotpath
func kernel8x4[T matrix.Scalar](kc int, a, b []T, c []T, ldc int) {
	var c0, c1, c2, c3, c4, c5, c6, c7 [4]T
	for k := 0; k < kc; k++ {
		ak := a[k*8 : k*8+8 : k*8+8]
		bk := b[k*4 : k*4+4 : k*4+4]
		b0, b1, b2, b3 := bk[0], bk[1], bk[2], bk[3]

		ai := ak[0]
		c0[0] += ai * b0
		c0[1] += ai * b1
		c0[2] += ai * b2
		c0[3] += ai * b3
		ai = ak[1]
		c1[0] += ai * b0
		c1[1] += ai * b1
		c1[2] += ai * b2
		c1[3] += ai * b3
		ai = ak[2]
		c2[0] += ai * b0
		c2[1] += ai * b1
		c2[2] += ai * b2
		c2[3] += ai * b3
		ai = ak[3]
		c3[0] += ai * b0
		c3[1] += ai * b1
		c3[2] += ai * b2
		c3[3] += ai * b3
		ai = ak[4]
		c4[0] += ai * b0
		c4[1] += ai * b1
		c4[2] += ai * b2
		c4[3] += ai * b3
		ai = ak[5]
		c5[0] += ai * b0
		c5[1] += ai * b1
		c5[2] += ai * b2
		c5[3] += ai * b3
		ai = ak[6]
		c6[0] += ai * b0
		c6[1] += ai * b1
		c6[2] += ai * b2
		c6[3] += ai * b3
		ai = ak[7]
		c7[0] += ai * b0
		c7[1] += ai * b1
		c7[2] += ai * b2
		c7[3] += ai * b3
	}
	rows := [8]*[4]T{&c0, &c1, &c2, &c3, &c4, &c5, &c6, &c7}
	for i, r := range rows {
		ci := c[i*ldc : i*ldc+4]
		ci[0] += r[0]
		ci[1] += r[1]
		ci[2] += r[2]
		ci[3] += r[3]
	}
}
