package kernel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

// packPanels builds an mr×kc A panel and kc×nr B panel (k-major) from dense
// matrices, matching the layout internal/packing produces.
func packPanels[T matrix.Scalar](a, b *matrix.Matrix[T], mr, nr int) (ap, bp []T) {
	kc := a.Cols
	ap = make([]T, mr*kc)
	bp = make([]T, kc*nr)
	for k := 0; k < kc; k++ {
		for i := 0; i < mr; i++ {
			ap[k*mr+i] = a.At(i, k)
		}
		for j := 0; j < nr; j++ {
			bp[k*nr+j] = b.At(k, j)
		}
	}
	return
}

func checkKernelAgainstNaive[T matrix.Scalar](t *testing.T, k Kernel[T], kc int, seed int64, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := matrix.New[T](k.MR, kc)
	b := matrix.New[T](kc, k.NR)
	a.Randomize(rng)
	b.Randomize(rng)
	ap, bp := packPanels(a, b, k.MR, k.NR)

	got := matrix.New[T](k.MR, k.NR)
	got.Randomize(rng)
	want := got.Clone()
	k.F(kc, ap, bp, got.Data, got.Stride)
	matrix.NaiveGemm(want, a, b)

	if !got.AlmostEqual(want, kc, tol) {
		t.Fatalf("%s kc=%d: max diff %g", k.Name, kc, got.MaxAbsDiff(want))
	}
}

func TestGenericKernelMatchesNaive(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {2, 3}, {4, 4}, {8, 8}, {5, 7}} {
		k := Generic[float64](shape[0], shape[1])
		for _, kc := range []int{1, 2, 17, 64} {
			checkKernelAgainstNaive(t, k, kc, int64(kc), 1e-12)
		}
	}
}

func TestUnrolledKernelsMatchGeneric(t *testing.T) {
	shapes := [][2]int{{8, 8}, {6, 8}, {4, 8}, {8, 4}, {4, 4}}
	for _, s := range shapes {
		k := Best[float64](s[0], s[1])
		if k.Name[:8] != "unrolled" {
			t.Fatalf("expected unrolled kernel for %dx%d, got %s", s[0], s[1], k.Name)
		}
		for _, kc := range []int{1, 3, 32, 100} {
			checkKernelAgainstNaive(t, k, kc, int64(kc)*31, 1e-12)
		}
	}
}

func TestUnrolledKernelsFloat32(t *testing.T) {
	for _, s := range [][2]int{{8, 8}, {6, 8}, {4, 8}, {8, 4}, {4, 4}} {
		k := Best[float32](s[0], s[1])
		checkKernelAgainstNaive(t, k, 64, 99, 1e-5)
	}
}

func TestBestFallsBackToGeneric(t *testing.T) {
	k := Best[float32](3, 5)
	if k.Name != "generic3x5" {
		t.Fatalf("expected generic fallback, got %s", k.Name)
	}
	checkKernelAgainstNaive(t, k, 20, 5, 1e-4)
}

func TestDefaultKernel(t *testing.T) {
	k := Default[float32]()
	if k.MR != 8 || k.NR != 8 {
		t.Fatalf("default kernel is %dx%d, want 8x8", k.MR, k.NR)
	}
}

func TestGenericInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generic[float32](0, 4)
}

func TestKernelZeroKc(t *testing.T) {
	// kc=0 must be a no-op (C unchanged), not a crash.
	k := Best[float64](8, 8)
	c := matrix.New[float64](8, 8)
	c.Fill(3)
	k.F(0, nil, nil, c.Data, c.Stride)
	for _, v := range c.Data {
		if v != 3 {
			t.Fatal("kc=0 modified C")
		}
	}
}

func TestKernelAccumulatesIntoC(t *testing.T) {
	k := Best[float64](4, 4)
	a := matrix.New[float64](4, 2)
	b := matrix.New[float64](2, 4)
	a.Fill(1)
	b.Fill(1)
	ap, bp := packPanels(a, b, 4, 4)
	c := matrix.New[float64](4, 4)
	c.Fill(10)
	k.F(2, ap, bp, c.Data, c.Stride)
	if c.At(0, 0) != 12 {
		t.Fatalf("C += contract broken: got %v want 12", c.At(0, 0))
	}
}

func TestKernelStridedC(t *testing.T) {
	// The kernel must honour ldc > nr (writing a tile inside a larger C).
	k := Best[float64](4, 4)
	big := matrix.New[float64](8, 10)
	tile := big.View(2, 3, 4, 4)
	a := matrix.New[float64](4, 5)
	b := matrix.New[float64](5, 4)
	rng := rand.New(rand.NewSource(3))
	a.Randomize(rng)
	b.Randomize(rng)
	ap, bp := packPanels(a, b, 4, 4)
	k.F(5, ap, bp, tile.Data, tile.Stride)

	want := matrix.New[float64](4, 4)
	matrix.NaiveGemm(want, a, b)
	if !tile.Clone().AlmostEqual(want, 5, 1e-12) {
		t.Fatal("strided C tile wrong")
	}
	if big.At(0, 0) != 0 || big.At(7, 9) != 0 {
		t.Fatal("kernel wrote outside its tile")
	}
}

func TestComputeTileFullAndEdge(t *testing.T) {
	k := Best[float64](8, 8)
	s := NewScratch[float64](8, 8)
	rng := rand.New(rand.NewSource(11))
	kc := 13
	a := matrix.New[float64](8, kc)
	b := matrix.New[float64](kc, 8)
	a.Randomize(rng)
	b.Randomize(rng)
	ap, bp := packPanels(a, b, 8, 8)

	// Full tile path.
	cFull := matrix.New[float64](8, 8)
	ComputeTile(k, kc, ap, bp, cFull, s)
	want := matrix.New[float64](8, 8)
	matrix.NaiveGemm(want, a, b)
	if !cFull.AlmostEqual(want, kc, 1e-12) {
		t.Fatal("full tile path wrong")
	}

	// Edge path: 5×3 valid region of an 8×8 tile. The packed panels carry
	// zero padding beyond the valid rows/cols, as packing produces.
	aEdge := a.Clone()
	bEdge := b.Clone()
	for i := 5; i < 8; i++ {
		for kk := 0; kk < kc; kk++ {
			aEdge.Set(i, kk, 0)
		}
	}
	for j := 3; j < 8; j++ {
		for kk := 0; kk < kc; kk++ {
			bEdge.Set(kk, j, 0)
		}
	}
	apE, bpE := packPanels(aEdge, bEdge, 8, 8)
	host := matrix.New[float64](6, 4)
	host.Fill(1)
	cEdge := host.View(1, 1, 5, 3)
	ComputeTile(k, kc, apE, bpE, cEdge, s)

	wantEdge := matrix.New[float64](5, 3)
	wantEdge.Fill(1)
	matrix.NaiveGemm(wantEdge, aEdge.View(0, 0, 5, kc), bEdge.View(0, 0, kc, 3))
	if !cEdge.Clone().AlmostEqual(wantEdge, kc, 1e-12) {
		t.Fatal("edge tile path wrong")
	}
	if host.At(0, 0) != 1 || host.At(0, 3) != 1 || host.At(5, 0) != 1 {
		t.Fatal("edge path wrote outside view")
	}
}

func TestKernelsAgreeQuick(t *testing.T) {
	// Property: every registered specialisation ≡ the generic kernel of the
	// same shape, over random kc and inputs.
	shapes := [][2]int{{8, 8}, {6, 8}, {4, 8}, {8, 4}, {4, 4}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := shapes[rng.Intn(len(shapes))]
		mr, nr := s[0], s[1]
		kc := 1 + rng.Intn(40)
		a := matrix.New[float64](mr, kc)
		b := matrix.New[float64](kc, nr)
		a.Randomize(rng)
		b.Randomize(rng)
		ap, bp := packPanels(a, b, mr, nr)

		c1 := matrix.New[float64](mr, nr)
		c2 := matrix.New[float64](mr, nr)
		Best[float64](mr, nr).F(kc, ap, bp, c1.Data, c1.Stride)
		Generic[float64](mr, nr).F(kc, ap, bp, c2.Data, c2.Stride)
		return c1.AlmostEqual(c2, kc, 1e-13)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
