// Package kernel implements the register-tile microkernels that sit at the
// bottom of both the CAKE and GOTO drivers, playing the role the BLIS kernel
// library plays in the paper's C++ implementation (Section 5.2).
//
// A microkernel computes one mr×nr tile of C:
//
//	C[0:mr, 0:nr] += Aᵖ × Bᵖ
//
// where Aᵖ is an mr×kc panel packed k-major (element (i,k) at a[k*mr+i]) and
// Bᵖ is a kc×nr panel packed k-major (element (k,j) at b[k*nr+j]). This is
// exactly the packed layout GotoBLAS/BLIS use, so the packing code in
// internal/packing is shared between both drivers.
//
// Per the reproduction constraints there is no assembly: specialised kernels
// are hand-unrolled pure Go. Absolute FLOP rates are below vendor BLAS, but
// the arithmetic structure — and therefore the memory behaviour the paper
// studies — is identical.
package kernel

import (
	"fmt"

	"repro/internal/matrix"
)

// Func is the microkernel calling convention. It accumulates an mr×nr tile
// into c (row stride ldc) from packed panels a (mr×kc, k-major) and b
// (kc×nr, k-major).
type Func[T matrix.Scalar] func(kc int, a, b []T, c []T, ldc int)

// Kernel bundles a microkernel with its register-tile dimensions.
type Kernel[T matrix.Scalar] struct {
	Name string
	MR   int
	NR   int
	F    Func[T]
}

// Generic returns a kernel of arbitrary tile shape. It is the reference
// against which the unrolled specialisations are verified, and the fallback
// for tile shapes without one.
func Generic[T matrix.Scalar](mr, nr int) Kernel[T] {
	if mr < 1 || nr < 1 {
		panic(fmt.Sprintf("kernel: invalid tile %dx%d", mr, nr))
	}
	f := func(kc int, a, b []T, c []T, ldc int) {
		for k := 0; k < kc; k++ {
			ak := a[k*mr : k*mr+mr]
			bk := b[k*nr : k*nr+nr]
			for i := 0; i < mr; i++ {
				aik := ak[i]
				ci := c[i*ldc : i*ldc+nr]
				for j := 0; j < nr; j++ {
					ci[j] += aik * bk[j]
				}
			}
		}
	}
	return Kernel[T]{Name: fmt.Sprintf("generic%dx%d", mr, nr), MR: mr, NR: nr, F: f}
}

// Best returns the preferred kernel for the given tile shape: a hand-
// unrolled specialisation when one exists, otherwise the generic kernel.
func Best[T matrix.Scalar](mr, nr int) Kernel[T] {
	switch {
	case mr == 8 && nr == 8:
		return Kernel[T]{Name: "unrolled8x8", MR: 8, NR: 8, F: kernel8x8[T]}
	case mr == 4 && nr == 8:
		return Kernel[T]{Name: "unrolled4x8", MR: 4, NR: 8, F: kernel4x8[T]}
	case mr == 8 && nr == 4:
		return Kernel[T]{Name: "unrolled8x4", MR: 8, NR: 4, F: kernel8x4[T]}
	case mr == 4 && nr == 4:
		return Kernel[T]{Name: "unrolled4x4", MR: 4, NR: 4, F: kernel4x4[T]}
	case mr == 6 && nr == 8:
		return Kernel[T]{Name: "unrolled6x8", MR: 6, NR: 8, F: kernel6x8[T]}
	default:
		return Generic[T](mr, nr)
	}
}

// Default returns the kernel used when the caller expresses no preference.
// 8×8 gives the best sustained rate of the pure-Go kernels on typical
// out-of-order cores (see BenchmarkAblationKernel).
func Default[T matrix.Scalar]() Kernel[T] { return Best[T](8, 8) }

// Scratch holds the temporary tile used for edge handling so that hot loops
// never allocate. One Scratch per worker goroutine.
type Scratch[T matrix.Scalar] struct {
	tile []T
}

// NewScratch returns scratch space sized for kernels up to mr×nr.
func NewScratch[T matrix.Scalar](mr, nr int) *Scratch[T] {
	return &Scratch[T]{tile: make([]T, mr*nr)}
}

// ComputeTile applies k to one register tile of C. When the destination view
// is a full mr×nr tile the kernel writes straight into C; partial edge tiles
// are computed into scratch and the valid region accumulated, which keeps
// the kernel itself free of bounds logic.
//
//cake:hotpath
func ComputeTile[T matrix.Scalar](k Kernel[T], kc int, a, b []T, c *matrix.Matrix[T], s *Scratch[T]) {
	if c.Rows == k.MR && c.Cols == k.NR {
		k.F(kc, a, b, c.Data, c.Stride)
		return
	}
	tile := s.tile[:k.MR*k.NR]
	for i := range tile {
		tile[i] = 0
	}
	k.F(kc, a, b, tile, k.NR)
	for i := 0; i < c.Rows; i++ {
		ci := c.Row(i)
		ti := tile[i*k.NR : i*k.NR+c.Cols]
		for j := range ti {
			ci[j] += ti[j]
		}
	}
}
