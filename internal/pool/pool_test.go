package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForRunsEveryItemOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 1000
	counts := make([]atomic.Int32, n)
	p.For(n, func(_, i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("item %d ran %d times", i, c)
		}
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	p := New(3)
	defer p.Close()
	var bad atomic.Int32
	p.For(200, func(w, _ int) {
		if w < 0 || w >= 3 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker id out of range")
	}
}

func TestForZeroAndNegative(t *testing.T) {
	p := New(2)
	defer p.Close()
	ran := false
	p.For(0, func(_, _ int) { ran = true })
	p.For(-5, func(_, _ int) { ran = true })
	if ran {
		t.Fatal("For ran items for n<=0")
	}
}

func TestForSingleWorkerInline(t *testing.T) {
	p := New(1)
	defer p.Close()
	order := []int{}
	p.For(5, func(w, i int) {
		if w != 0 {
			t.Fatalf("worker %d on single-worker pool", w)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatal("single-worker pool must run in order")
		}
	}
}

func TestForReusableAcrossCalls(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total atomic.Int64
	for round := 0; round < 50; round++ {
		p.For(37, func(_, _ int) { total.Add(1) })
	}
	if total.Load() != 50*37 {
		t.Fatalf("total %d", total.Load())
	}
}

func TestForConcurrencyActuallyParallel(t *testing.T) {
	// With w workers and w items that rendezvous, completion proves
	// parallel execution (a serial pool would deadlock).
	const w = 4
	p := New(w)
	defer p.Close()
	var barrier sync.WaitGroup
	barrier.Add(w)
	done := make(chan struct{})
	go func() {
		p.For(w, func(_, _ int) {
			barrier.Done()
			barrier.Wait()
		})
		close(done)
	}()
	<-done
}

func TestForStaticMapping(t *testing.T) {
	const w = 3
	p := New(w)
	defer p.Close()
	cores := make([]int, 20)
	var mu sync.Mutex
	p.ForStatic(20, func(core, i int) {
		mu.Lock()
		cores[i] = core
		mu.Unlock()
	})
	for i, c := range cores {
		if c != i%w {
			t.Fatalf("item %d ran on core %d, want %d", i, c, i%w)
		}
	}
}

func TestForStaticEachItemOnce(t *testing.T) {
	p := New(5)
	defer p.Close()
	counts := make([]atomic.Int32, 101)
	p.ForStatic(101, func(_, i int) { counts[i].Add(1) })
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("item %d ran %d times", i, counts[i].Load())
		}
	}
}

func TestForStaticCoreExclusive(t *testing.T) {
	// Items of the same virtual core must run sequentially: per-core
	// counters need no locks.
	const w = 4
	p := New(w)
	defer p.Close()
	perCore := make([]int, w) // intentionally not atomic
	p.ForStatic(400, func(core, _ int) { perCore[core]++ })
	sum := 0
	for _, c := range perCore {
		sum += c
	}
	if sum != 400 {
		t.Fatalf("sum %d want 400 (lost updates imply core sharing)", sum)
	}
}

func TestSubmitRunsEveryItemOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 500
	counts := make([]atomic.Int32, n)
	h := p.Submit(n, func(_, i int) { counts[i].Add(1) })
	h.Wait()
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("item %d ran %d times", i, c)
		}
	}
}

func TestSubmitDoesNotBlockCaller(t *testing.T) {
	// A submitted job that rendezvouses with the caller proves Submit
	// returned while the job was still running.
	p := New(2)
	defer p.Close()
	release := make(chan struct{})
	h := p.Submit(1, func(_, _ int) { <-release })
	close(release) // reached only because Submit returned
	h.Wait()
}

func TestSubmitOverlapsWithSyncFor(t *testing.T) {
	// The async job blocks until the sync job has run: completion proves the
	// pool multiplexes a queued async job with a later synchronous one.
	p := New(2)
	defer p.Close()
	syncRan := make(chan struct{})
	h := p.Submit(1, func(_, _ int) { <-syncRan })
	p.For(1, func(_, _ int) {}) // inline fast path, independent of workers
	close(syncRan)
	h.Wait()
}

func TestSubmitZeroItems(t *testing.T) {
	p := New(2)
	defer p.Close()
	h := p.Submit(0, func(_, _ int) { t.Error("ran for n=0") })
	h.Wait()
	h.Wait() // Wait is idempotent
	var nilH *Handle
	nilH.Wait() // and nil-safe
}

func TestForStaticAsyncMapping(t *testing.T) {
	const w = 3
	p := New(w)
	defer p.Close()
	cores := make([]int, 20)
	var mu sync.Mutex
	h := p.ForStaticAsync(20, func(core, i int) {
		mu.Lock()
		cores[i] = core
		mu.Unlock()
	})
	h.Wait()
	for i, c := range cores {
		if c != i%w {
			t.Fatalf("item %d ran on core %d, want %d", i, c, i%w)
		}
	}
}

func TestForStaticAsyncSingleWorker(t *testing.T) {
	// On a 1-worker pool async submission must still enqueue (not run
	// inline), so the caller can do concurrent work before Wait.
	p := New(1)
	defer p.Close()
	var ran atomic.Int32
	h := p.ForStaticAsync(5, func(core, _ int) {
		if core != 0 {
			t.Errorf("core %d on single-worker pool", core)
		}
		ran.Add(1)
	})
	h.Wait()
	if ran.Load() != 5 {
		t.Fatalf("ran %d of 5", ran.Load())
	}
}

func TestManyConcurrentSubmits(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total atomic.Int64
	handles := make([]*Handle, 32)
	for i := range handles {
		handles[i] = p.Submit(17, func(_, _ int) { total.Add(1) })
	}
	for _, h := range handles {
		h.Wait()
	}
	if total.Load() != 32*17 {
		t.Fatalf("total %d want %d", total.Load(), 32*17)
	}
}

func TestForSmallerThanPool(t *testing.T) {
	// n < workers must still run every item exactly once (only min(n, w)
	// handles are enqueued).
	p := New(8)
	defer p.Close()
	for _, n := range []int{1, 2, 3, 7} {
		counts := make([]atomic.Int32, n)
		p.For(n, func(_, i int) { counts[i].Add(1) })
		for i := range counts {
			if counts[i].Load() != 1 {
				t.Fatalf("n=%d item %d ran %d times", n, i, counts[i].Load())
			}
		}
	}
}

func TestForStaticSmallerThanPool(t *testing.T) {
	p := New(8)
	defer p.Close()
	for _, n := range []int{1, 2, 5} {
		cores := make([]int, n)
		var mu sync.Mutex
		p.ForStatic(n, func(core, i int) {
			mu.Lock()
			cores[i] = core
			mu.Unlock()
		})
		for i, c := range cores {
			if c != i { // i%8 == i for n <= 8
				t.Fatalf("n=%d item %d on core %d", n, i, c)
			}
		}
	}
}

func TestWorkersAndDefault(t *testing.T) {
	p := New(7)
	if p.Workers() != 7 {
		t.Fatal("Workers wrong")
	}
	p.Close()
	d := New(0)
	if d.Workers() < 1 {
		t.Fatal("default pool empty")
	}
	d.Close()
}

func TestUseAfterClosePanics(t *testing.T) {
	p := New(2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.For(10, func(_, _ int) {})
}

func TestDoubleClosePanics(t *testing.T) {
	p := New(2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Close()
}
