package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForRunsEveryItemOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 1000
	counts := make([]atomic.Int32, n)
	p.For(n, func(_, i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("item %d ran %d times", i, c)
		}
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	p := New(3)
	defer p.Close()
	var bad atomic.Int32
	p.For(200, func(w, _ int) {
		if w < 0 || w >= 3 {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatal("worker id out of range")
	}
}

func TestForZeroAndNegative(t *testing.T) {
	p := New(2)
	defer p.Close()
	ran := false
	p.For(0, func(_, _ int) { ran = true })
	p.For(-5, func(_, _ int) { ran = true })
	if ran {
		t.Fatal("For ran items for n<=0")
	}
}

func TestForSingleWorkerInline(t *testing.T) {
	p := New(1)
	defer p.Close()
	order := []int{}
	p.For(5, func(w, i int) {
		if w != 0 {
			t.Fatalf("worker %d on single-worker pool", w)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatal("single-worker pool must run in order")
		}
	}
}

func TestForReusableAcrossCalls(t *testing.T) {
	p := New(4)
	defer p.Close()
	var total atomic.Int64
	for round := 0; round < 50; round++ {
		p.For(37, func(_, _ int) { total.Add(1) })
	}
	if total.Load() != 50*37 {
		t.Fatalf("total %d", total.Load())
	}
}

func TestForConcurrencyActuallyParallel(t *testing.T) {
	// With w workers and w items that rendezvous, completion proves
	// parallel execution (a serial pool would deadlock).
	const w = 4
	p := New(w)
	defer p.Close()
	var barrier sync.WaitGroup
	barrier.Add(w)
	done := make(chan struct{})
	go func() {
		p.For(w, func(_, _ int) {
			barrier.Done()
			barrier.Wait()
		})
		close(done)
	}()
	<-done
}

func TestForStaticMapping(t *testing.T) {
	const w = 3
	p := New(w)
	defer p.Close()
	cores := make([]int, 20)
	var mu sync.Mutex
	p.ForStatic(20, func(core, i int) {
		mu.Lock()
		cores[i] = core
		mu.Unlock()
	})
	for i, c := range cores {
		if c != i%w {
			t.Fatalf("item %d ran on core %d, want %d", i, c, i%w)
		}
	}
}

func TestForStaticEachItemOnce(t *testing.T) {
	p := New(5)
	defer p.Close()
	counts := make([]atomic.Int32, 101)
	p.ForStatic(101, func(_, i int) { counts[i].Add(1) })
	for i := range counts {
		if counts[i].Load() != 1 {
			t.Fatalf("item %d ran %d times", i, counts[i].Load())
		}
	}
}

func TestForStaticCoreExclusive(t *testing.T) {
	// Items of the same virtual core must run sequentially: per-core
	// counters need no locks.
	const w = 4
	p := New(w)
	defer p.Close()
	perCore := make([]int, w) // intentionally not atomic
	p.ForStatic(400, func(core, _ int) { perCore[core]++ })
	sum := 0
	for _, c := range perCore {
		sum += c
	}
	if sum != 400 {
		t.Fatalf("sum %d want 400 (lost updates imply core sharing)", sum)
	}
}

func TestWorkersAndDefault(t *testing.T) {
	p := New(7)
	if p.Workers() != 7 {
		t.Fatal("Workers wrong")
	}
	p.Close()
	d := New(0)
	if d.Workers() < 1 {
		t.Fatal("default pool empty")
	}
	d.Close()
}

func TestUseAfterClosePanics(t *testing.T) {
	p := New(2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.For(10, func(_, _ int) {})
}

func TestDoubleClosePanics(t *testing.T) {
	p := New(2)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Close()
}
