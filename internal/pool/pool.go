// Package pool provides a fixed-size worker pool with a parallel-for
// primitive. The CAKE and GOTO drivers use one worker per simulated core so
// that goroutine identity corresponds to the paper's "core" (each core owns
// one A tile / one mc-strip of the CB block), and so repeated block
// executions reuse goroutines instead of spawning per block.
package pool

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

type job struct {
	f    func(worker, item int)
	n    int64
	next atomic.Int64
	wg   sync.WaitGroup
}

// Pool runs work items on a fixed set of worker goroutines.
type Pool struct {
	workers int
	jobs    chan *job
	closed  atomic.Bool
}

// New creates a pool with the given number of workers. workers <= 0 selects
// GOMAXPROCS. Callers must Close the pool when done with it.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, jobs: make(chan *job)}
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

func (p *Pool) worker(id int) {
	for j := range p.jobs {
		for {
			i := j.next.Add(1) - 1
			if i >= j.n {
				break
			}
			j.f(id, int(i))
		}
		j.wg.Done()
	}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// For runs f(worker, item) for every item in [0, n), distributing items over
// the workers, and blocks until all complete. worker identifies the
// executing worker in [0, Workers()); items are claimed dynamically, so a
// worker may execute zero or many items. f must not call For on the same
// pool (no nested parallelism).
func (p *Pool) For(n int, f func(worker, item int)) {
	if n <= 0 {
		return
	}
	if p.closed.Load() {
		panic("pool: For on closed pool")
	}
	if p.workers == 1 || n == 1 {
		// Fast path: run inline; worker id 0 keeps per-worker scratch valid.
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	j := &job{f: f, n: int64(n)}
	j.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.jobs <- j
	}
	j.wg.Wait()
}

// ForStatic runs f(core, item) with a static assignment: item i always runs
// under virtual core i%Workers(), and one goroutine serves each virtual
// core. Used where the paper's analysis pins work to a core (core i owns
// strip i of every CB block), so per-core scratch indexed by the core
// argument is never shared.
func (p *Pool) ForStatic(n int, f func(core, item int)) {
	if n <= 0 {
		return
	}
	if p.closed.Load() {
		panic("pool: ForStatic on closed pool")
	}
	if p.workers == 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	// Each dynamically claimed item in [0, workers) is a virtual core that
	// processes its own strided slice of [0, n). Exactly one goroutine
	// claims each virtual core, giving the static mapping.
	j := &job{n: int64(p.workers)}
	j.f = func(_, core int) {
		for i := core; i < n; i += p.workers {
			f(core, i)
		}
	}
	j.wg.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		p.jobs <- j
	}
	j.wg.Wait()
}

// Close shuts the pool down. Pending For calls must have returned; using
// the pool after Close panics.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		panic(fmt.Sprintf("pool: double Close of %d-worker pool", p.workers))
	}
	close(p.jobs)
}
