// Package pool provides a fixed-size worker pool with parallel-for
// primitives. The CAKE and GOTO drivers use one worker per simulated core so
// that goroutine identity corresponds to the paper's "core" (each core owns
// one A tile / one mc-strip of the CB block), and so repeated block
// executions reuse goroutines instead of spawning per block.
//
// Besides the synchronous For/ForStatic, the pool offers asynchronous
// submission (Submit, ForStaticAsync) returning a waitable Handle. Workers
// drain queued jobs in FIFO order, so a caller can enqueue a pack job for
// CB block i+1, immediately run the compute job for block i, and overlap the
// two: workers that finish their share of one job flow into the next without
// a barrier in between. This is the mechanism behind the pipelined executor
// in internal/core (paper Section 3: compute fully overlaps the constant
// stream of memory traffic).
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

type job struct {
	f    func(worker, item int)
	n    int64
	next atomic.Int64
	wg   sync.WaitGroup

	// ctx, when non-nil, carries pprof labels (see runtime/pprof.Do) that
	// each worker goroutine wears while running this job's items, so CPU
	// profiles attribute samples to {executor, phase}. Jobs submitted
	// through the unlabeled API leave it nil and pay nothing.
	ctx context.Context
}

// Handle is a waitable ticket for a job submitted asynchronously. The zero
// Handle (and a nil Handle) are valid and already complete.
type Handle struct {
	j *job
}

// Wait blocks until every item of the submitted job has finished. It is safe
// to call multiple times and on a nil Handle.
func (h *Handle) Wait() {
	if h == nil || h.j == nil {
		return
	}
	h.j.wg.Wait()
}

// Pool runs work items on a fixed set of worker goroutines.
type Pool struct {
	workers int
	jobs    chan *job
	closed  atomic.Bool
}

// New creates a pool with the given number of workers. workers <= 0 selects
// GOMAXPROCS. Callers must Close the pool when done with it.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, jobs: make(chan *job)}
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

func (p *Pool) worker(id int) {
	for j := range p.jobs {
		if j.ctx != nil {
			pprof.Do(j.ctx, pprof.Labels(), func(context.Context) { p.runItems(j, id) })
		} else {
			p.runItems(j, id)
		}
		j.wg.Done()
	}
}

// runItems drains the job's remaining items on worker id.
func (p *Pool) runItems(j *job, id int) {
	for {
		i := j.next.Add(1) - 1
		if i >= j.n {
			break
		}
		j.f(id, int(i))
	}
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// enqueue fans a job out to the pool. fan bounds how many workers can claim
// the job; sending fan handles wakes at most fan idle workers, so small jobs
// do not disturb the rest of the pool. When async, the sends happen on a
// helper goroutine so the caller never blocks behind busy workers.
func (p *Pool) enqueue(j *job, fan int, async bool) {
	j.wg.Add(fan)
	send := func() {
		for w := 0; w < fan; w++ {
			p.jobs <- j
		}
	}
	if async {
		go send()
	} else {
		send()
	}
}

// For runs f(worker, item) for every item in [0, n), distributing items over
// the workers, and blocks until all complete. worker identifies the
// executing worker in [0, Workers()); items are claimed dynamically, so a
// worker may execute zero or many items. f must not call For on the same
// pool (no nested parallelism).
func (p *Pool) For(n int, f func(worker, item int)) {
	p.ForLabeled(nil, n, f)
}

// ForLabeled is For with pprof labels: while running this job's items each
// worker goroutine wears ctx's label set (see obs.LabelCtx), so profiles
// split by executor phase. A nil ctx is exactly For.
func (p *Pool) ForLabeled(ctx context.Context, n int, f func(worker, item int)) {
	if n <= 0 {
		return
	}
	if p.closed.Load() {
		panic("pool: For on closed pool")
	}
	if p.workers == 1 || n == 1 {
		// Fast path: run inline; worker id 0 keeps per-worker scratch valid.
		p.runInline(ctx, n, f)
		return
	}
	j := &job{f: f, n: int64(n), ctx: ctx}
	p.enqueue(j, min(n, p.workers), false)
	j.wg.Wait()
}

// runInline executes small jobs on the caller goroutine, still honouring
// the job's label set so single-worker profiles stay attributed.
func (p *Pool) runInline(ctx context.Context, n int, f func(worker, item int)) {
	body := func() {
		for i := 0; i < n; i++ {
			f(0, i)
		}
	}
	if ctx != nil {
		pprof.Do(ctx, pprof.Labels(), func(context.Context) { body() })
		return
	}
	body()
}

// Submit enqueues a For-style dynamic job without waiting for it: f(worker,
// item) will run for every item in [0, n) on the pool's workers, concurrently
// with anything the caller does next. The returned Handle's Wait blocks until
// all items finish. Every Handle must be waited before the pool is Closed.
func (p *Pool) Submit(n int, f func(worker, item int)) *Handle {
	return p.SubmitLabeled(nil, n, f)
}

// SubmitLabeled is Submit with pprof labels applied to the worker
// goroutines for the duration of the job (nil ctx is exactly Submit).
func (p *Pool) SubmitLabeled(ctx context.Context, n int, f func(worker, item int)) *Handle {
	if n <= 0 {
		return &Handle{}
	}
	if p.closed.Load() {
		panic("pool: Submit on closed pool")
	}
	j := &job{f: f, n: int64(n), ctx: ctx}
	p.enqueue(j, min(n, p.workers), true)
	return &Handle{j: j}
}

// staticJob builds the virtual-core job ForStatic and ForStaticAsync share:
// each of the min(n, workers) virtual cores processes its own strided slice
// of [0, n), and exactly one goroutine claims each virtual core.
func (p *Pool) staticJob(n int, f func(core, item int)) (*job, int) {
	fan := min(n, p.workers)
	j := &job{n: int64(fan)}
	j.f = func(_, core int) {
		for i := core; i < n; i += p.workers {
			f(core, i)
		}
	}
	return j, fan
}

// ForStatic runs f(core, item) with a static assignment: item i always runs
// under virtual core i%Workers(), and one goroutine serves each virtual
// core. Used where the paper's analysis pins work to a core (core i owns
// strip i of every CB block), so per-core scratch indexed by the core
// argument is never shared.
func (p *Pool) ForStatic(n int, f func(core, item int)) {
	p.ForStaticLabeled(nil, n, f)
}

// ForStaticLabeled is ForStatic with pprof labels applied to the worker
// goroutines for the duration of the job (nil ctx is exactly ForStatic).
func (p *Pool) ForStaticLabeled(ctx context.Context, n int, f func(core, item int)) {
	if n <= 0 {
		return
	}
	if p.closed.Load() {
		panic("pool: ForStatic on closed pool")
	}
	if p.workers == 1 || n == 1 {
		// Fast path: run inline; item i of a single-item job maps to virtual
		// core 0 either way, so the static contract is preserved.
		p.runInline(ctx, n, f)
		return
	}
	j, fan := p.staticJob(n, f)
	j.ctx = ctx
	p.enqueue(j, fan, false)
	j.wg.Wait()
}

// ForStaticAsync enqueues a ForStatic-style job without waiting for it,
// returning a waitable Handle. The static core mapping is identical to
// ForStatic's. Every Handle must be waited before the pool is Closed.
func (p *Pool) ForStaticAsync(n int, f func(core, item int)) *Handle {
	if n <= 0 {
		return &Handle{}
	}
	if p.closed.Load() {
		panic("pool: ForStaticAsync on closed pool")
	}
	j, fan := p.staticJob(n, f)
	p.enqueue(j, fan, true)
	return &Handle{j: j}
}

// Close shuts the pool down. Pending For calls must have returned and every
// async Handle must have been waited; using the pool after Close panics.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		panic(fmt.Sprintf("pool: double Close of %d-worker pool", p.workers))
	}
	close(p.jobs)
}
