package pool

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
	"testing"
)

// labelCtx mirrors what the executors attach to their jobs.
func labelCtx() context.Context {
	return pprof.WithLabels(context.Background(), pprof.Labels("executor", "test", "phase", "pack"))
}

func TestForLabeledRunsEveryItemOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	const n = 500
	counts := make([]atomic.Int32, n)
	p.ForLabeled(labelCtx(), n, func(_, i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("item %d ran %d times", i, c)
		}
	}
}

func TestForStaticLabeledMapping(t *testing.T) {
	p := New(3)
	defer p.Close()
	var bad atomic.Int32
	ran := make([]atomic.Int32, 7)
	p.ForStaticLabeled(labelCtx(), 7, func(core, i int) {
		if i < 0 || i >= 7 {
			bad.Add(1)
			return
		}
		ran[i].Add(1)
	})
	if bad.Load() != 0 {
		t.Fatal("item out of range")
	}
	for i := range ran {
		if ran[i].Load() != 1 {
			t.Fatalf("item %d ran %d times", i, ran[i].Load())
		}
	}
}

func TestSubmitLabeledCompletes(t *testing.T) {
	p := New(2)
	defer p.Close()
	var n atomic.Int32
	h := p.SubmitLabeled(labelCtx(), 64, func(_, _ int) { n.Add(1) })
	h.Wait()
	if n.Load() != 64 {
		t.Fatalf("ran %d of 64 items", n.Load())
	}
}

func TestLabeledNilContext(t *testing.T) {
	// nil ctx must behave exactly like the unlabeled entry points.
	p := New(2)
	defer p.Close()
	var n atomic.Int32
	p.ForLabeled(nil, 32, func(_, _ int) { n.Add(1) })
	p.ForStaticLabeled(nil, 32, func(_, _ int) { n.Add(1) })
	p.SubmitLabeled(nil, 32, func(_, _ int) { n.Add(1) }).Wait()
	if n.Load() != 96 {
		t.Fatalf("ran %d of 96 items", n.Load())
	}
}

func TestLabeledSingleWorkerInline(t *testing.T) {
	p := New(1)
	defer p.Close()
	var n atomic.Int32
	p.ForLabeled(labelCtx(), 16, func(w, _ int) {
		if w != 0 {
			t.Errorf("worker %d on single-worker pool", w)
		}
		n.Add(1)
	})
	if n.Load() != 16 {
		t.Fatalf("ran %d of 16 items", n.Load())
	}
}
