// Package membench measures the host's memory bandwidth the way the
// paper's pmbw tool does (Section 5.2: "Internal bandwidths between the
// last level cache and CPU cores were measured using the parallel memory
// bandwidth benchmark tool (pmbw)"): concurrent streaming copies over
// per-thread working sets, scanned across thread counts and working-set
// sizes. FitBWCurve turns a thread scan into the piecewise-linear
// platform.BWCurve the simulator and planner consume, closing the loop
// between measurement and model on real hardware.
package membench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/platform"
)

// Point is one thread-scan observation.
type Point struct {
	Threads     int
	BytesPerSec float64
}

// Measure runs p goroutines streaming copies through private working sets
// of wsBytes each for roughly dur, returning the aggregate bytes/second
// (reads + writes, as pmbw's copy scan counts).
func Measure(p, wsBytes int, dur time.Duration) (float64, error) {
	if p < 1 || wsBytes < 64 || dur <= 0 {
		return 0, fmt.Errorf("membench: invalid measure args p=%d ws=%d dur=%v", p, wsBytes, dur)
	}
	words := wsBytes / 16 // per buffer; src+dst double it
	var total atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	stop := make(chan struct{})
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := make([]uint64, words)
			dst := make([]uint64, words)
			for j := range src {
				src[j] = uint64(j)
			}
			<-start
			var moved int64
			for {
				select {
				case <-stop:
					total.Add(moved)
					return
				default:
				}
				copy(dst, src)
				moved += int64(words) * 16 // 8 bytes read + 8 written per word
			}
		}()
	}
	t0 := time.Now()
	close(start)
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	return float64(total.Load()) / elapsed, nil
}

// ScanThreads measures aggregate bandwidth for 1..maxThreads threads.
func ScanThreads(maxThreads, wsBytes int, dur time.Duration) ([]Point, error) {
	if maxThreads < 1 {
		return nil, fmt.Errorf("membench: maxThreads %d", maxThreads)
	}
	out := make([]Point, 0, maxThreads)
	for p := 1; p <= maxThreads; p++ {
		bw, err := Measure(p, wsBytes, dur)
		if err != nil {
			return nil, err
		}
		out = append(out, Point{Threads: p, BytesPerSec: bw})
	}
	return out, nil
}

// SizePoint is one working-set-scan observation.
type SizePoint struct {
	WorkingSet  int
	BytesPerSec float64
}

// ScanWorkingSet measures single-thread bandwidth across working-set sizes,
// the scan that exposes cache-capacity cliffs (pmbw's size sweep).
func ScanWorkingSet(sizes []int, dur time.Duration) ([]SizePoint, error) {
	out := make([]SizePoint, 0, len(sizes))
	for _, ws := range sizes {
		bw, err := Measure(1, ws, dur)
		if err != nil {
			return nil, err
		}
		out = append(out, SizePoint{WorkingSet: ws, BytesPerSec: bw})
	}
	return out, nil
}

// FitBWCurve fits the piecewise-linear saturation model the platform
// package uses to a thread scan: the knee is placed where the per-core
// increment drops the most, SlopePre is the mean increment before it and
// SlopePost the mean after. A scan with fewer than three points (or no
// clear knee) fits a single line.
func FitBWCurve(points []Point) (platform.BWCurve, error) {
	if len(points) == 0 {
		return platform.BWCurve{}, fmt.Errorf("membench: empty scan")
	}
	if len(points) < 3 {
		slope := points[0].BytesPerSec
		if len(points) == 2 {
			slope = points[1].BytesPerSec / 2
		}
		return platform.BWCurve{SlopePre: slope, Knee: len(points), SlopePost: slope}, nil
	}
	// Per-thread increments; increments[i] is the gain of thread i+2.
	incs := make([]float64, len(points)-1)
	for i := 1; i < len(points); i++ {
		incs[i-1] = points[i].BytesPerSec - points[i-1].BytesPerSec
	}
	// Knee: the increment index with the largest drop from the running
	// pre-knee average.
	knee := len(points) // default: no knee observed
	bestDrop := 0.0
	preSum := points[0].BytesPerSec
	preCount := 1.0
	for i, inc := range incs {
		avg := preSum / preCount
		if drop := avg - inc; drop > bestDrop && drop > 0.25*avg {
			bestDrop = drop
			knee = i + 1 // threads before this increment
		}
		preSum += inc
		preCount++
	}
	var pre, post float64
	if knee >= len(points) {
		pre = points[len(points)-1].BytesPerSec / float64(len(points))
		post = pre
	} else {
		pre = points[knee-1].BytesPerSec / float64(knee)
		n := 0.0
		for i := knee - 1; i < len(incs); i++ {
			post += incs[i]
			n++
		}
		post /= n
		if post < 0 {
			post = 0
		}
	}
	return platform.BWCurve{SlopePre: pre, Knee: knee, SlopePost: post}, nil
}
