package membench

import (
	"testing"
	"time"

	"repro/internal/platform"
)

func TestMeasureReturnsBandwidth(t *testing.T) {
	bw, err := Measure(1, 1<<20, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Any machine that runs the suite moves well over 100 MB/s.
	if bw < 100e6 {
		t.Fatalf("implausible bandwidth %v", bw)
	}
}

func TestMeasureInvalidArgs(t *testing.T) {
	if _, err := Measure(0, 1<<20, time.Millisecond); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := Measure(1, 8, time.Millisecond); err == nil {
		t.Fatal("tiny working set accepted")
	}
	if _, err := Measure(1, 1<<20, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
}

func TestScanThreads(t *testing.T) {
	pts, err := ScanThreads(2, 1<<20, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Threads != 1 || pts[1].Threads != 2 {
		t.Fatalf("scan %v", pts)
	}
	if _, err := ScanThreads(0, 1<<20, time.Millisecond); err == nil {
		t.Fatal("maxThreads=0 accepted")
	}
}

func TestScanWorkingSet(t *testing.T) {
	if testing.Short() {
		// Requires measurable bandwidth within a 10ms budget; under the
		// race detector the budget can elapse before one sweep finishes,
		// so the -short race gate skips this and the plain `go test ./...`
		// run keeps the coverage.
		t.Skip("wall-clock-sensitive assertions")
	}
	pts, err := ScanWorkingSet([]int{64 << 10, 8 << 20}, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].WorkingSet != 64<<10 {
		t.Fatalf("scan %v", pts)
	}
	for _, p := range pts {
		if p.BytesPerSec <= 0 {
			t.Fatal("non-positive bandwidth")
		}
	}
}

func TestFitBWCurveRecoversSyntheticKnee(t *testing.T) {
	// Intel-like shape: 60 GB/s per core to 6 cores, then 25 GB/s.
	truth := platform.BWCurve{SlopePre: 60, Knee: 6, SlopePost: 25}
	var pts []Point
	for p := 1; p <= 10; p++ {
		pts = append(pts, Point{Threads: p, BytesPerSec: truth.At(p)})
	}
	got, err := FitBWCurve(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Knee != 6 {
		t.Fatalf("knee %d want 6 (%+v)", got.Knee, got)
	}
	if got.SlopePre < 55 || got.SlopePre > 65 || got.SlopePost < 20 || got.SlopePost > 30 {
		t.Fatalf("slopes %+v", got)
	}
	// Round trip: the fitted curve reproduces the scan.
	for p := 1; p <= 10; p++ {
		if d := got.At(p) - truth.At(p); d > 1 || d < -1 {
			t.Fatalf("fit diverges at p=%d: %v vs %v", p, got.At(p), truth.At(p))
		}
	}
}

func TestFitBWCurveLinearScan(t *testing.T) {
	// AMD-like: no knee within the scan — the fit stays linear.
	var pts []Point
	for p := 1; p <= 8; p++ {
		pts = append(pts, Point{Threads: p, BytesPerSec: 50 * float64(p)})
	}
	got, err := FitBWCurve(pts)
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 8; p++ {
		if d := got.At(p) - 50*float64(p); d > 1 || d < -1 {
			t.Fatalf("linear fit diverges at p=%d: %v", p, got.At(p))
		}
	}
}

func TestFitBWCurveARMShape(t *testing.T) {
	// ARM-like: hard flatten after 2 threads.
	pts := []Point{{1, 7}, {2, 14}, {3, 14.5}, {4, 15}}
	got, err := FitBWCurve(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Knee != 2 {
		t.Fatalf("knee %d want 2 (%+v)", got.Knee, got)
	}
	if got.At(4) > 17 || got.At(4) < 13 {
		t.Fatalf("At(4)=%v", got.At(4))
	}
}

func TestFitBWCurveSmallInputs(t *testing.T) {
	if _, err := FitBWCurve(nil); err == nil {
		t.Fatal("empty scan accepted")
	}
	one, err := FitBWCurve([]Point{{1, 10}})
	if err != nil || one.At(1) != 10 {
		t.Fatalf("single point fit: %+v err=%v", one, err)
	}
	two, err := FitBWCurve([]Point{{1, 10}, {2, 18}})
	if err != nil || two.At(2) != 18 {
		t.Fatalf("two point fit: %+v err=%v", two, err)
	}
}

func TestFitBWCurveNeverNegativePost(t *testing.T) {
	pts := []Point{{1, 100}, {2, 200}, {3, 180}, {4, 160}}
	got, err := FitBWCurve(pts)
	if err != nil {
		t.Fatal(err)
	}
	if got.SlopePost < 0 || got.At(10) < 0 {
		t.Fatalf("negative extrapolation: %+v", got)
	}
}
