package cake

import (
	"math/rand"
	"testing"

	"repro/internal/schedule"
)

func TestGemmAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix[float32](123, 77)
	b := NewMatrix[float32](77, 145)
	a.Randomize(rng)
	b.Randomize(rng)
	c := NewMatrix[float32](123, 145)
	want := NewMatrix[float32](123, 145)
	NaiveGemm(want, a, b)
	if err := Gemm(c, a, b); err != nil {
		t.Fatal(err)
	}
	if !c.AlmostEqual(want, 77, 1e-5) {
		t.Fatalf("public Gemm wrong: diff %g", c.MaxAbsDiff(want))
	}
}

func TestGemmFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewMatrix[float64](64, 64)
	b := NewMatrix[float64](64, 64)
	a.Randomize(rng)
	b.Randomize(rng)
	c := NewMatrix[float64](64, 64)
	want := NewMatrix[float64](64, 64)
	NaiveGemm(want, a, b)
	if err := Gemm(c, a, b); err != nil {
		t.Fatal(err)
	}
	if !c.AlmostEqual(want, 64, 1e-12) {
		t.Fatal("float64 Gemm wrong")
	}
}

func TestGemmDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = Gemm(NewMatrix[float32](2, 2), NewMatrix[float32](2, 3), NewMatrix[float32](4, 2))
}

func TestPlanForTable2Platforms(t *testing.T) {
	for _, pl := range Platforms() {
		cfg, err := Plan[float32](pl, 2000, 2000, 2000)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name, err)
		}
		if cfg.Cores != pl.Cores || cfg.Validate() != nil {
			t.Fatalf("%s: bad plan %+v", pl.Name, cfg)
		}
	}
}

func TestExecutorPublicAPI(t *testing.T) {
	cfg, err := Plan[float64](ARMCortexA53(), 100, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor[float64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(3))
	a := NewMatrix[float64](100, 100)
	b := NewMatrix[float64](100, 100)
	a.Randomize(rng)
	b.Randomize(rng)
	c := NewMatrix[float64](100, 100)
	want := NewMatrix[float64](100, 100)
	NaiveGemm(want, a, b)
	st, err := e.Gemm(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if st.Blocks < 1 {
		t.Fatal("no blocks executed")
	}
	if !c.AlmostEqual(want, 100, 1e-12) {
		t.Fatal("executor result wrong")
	}
}

func TestSharedPoolAcrossExecutors(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	cfg := Config{Cores: 4, MC: 16, KC: 16, Alpha: 1, MR: 8, NR: 8}
	cfg.Order = -1 // OrderAuto
	e1, err := NewExecutorWithPool[float32](cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	e2, err := NewExecutorWithPool[float32](cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	a := NewMatrix[float32](32, 32)
	b := NewMatrix[float32](32, 32)
	a.Fill(1)
	b.Fill(1)
	c1 := NewMatrix[float32](32, 32)
	c2 := NewMatrix[float32](32, 32)
	if _, err := e1.Gemm(c1, a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Gemm(c2, a, b); err != nil {
		t.Fatal(err)
	}
	if !c1.Equal(c2) || c1.At(0, 0) != 32 {
		t.Fatal("shared-pool executors disagree")
	}
}

func TestGotoPublicAPI(t *testing.T) {
	cfg, err := PlanGoto[float32](IntelI9())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	a := NewMatrix[float32](90, 70)
	b := NewMatrix[float32](70, 110)
	a.Randomize(rng)
	b.Randomize(rng)
	c := NewMatrix[float32](90, 110)
	want := NewMatrix[float32](90, 110)
	NaiveGemm(want, a, b)
	if _, err := GotoGemm(c, a, b, cfg); err != nil {
		t.Fatal(err)
	}
	if !c.AlmostEqual(want, 70, 1e-5) {
		t.Fatal("public GotoGemm wrong")
	}
}

func TestCakeAndGotoAgreePublic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewMatrix[float64](130, 60)
	b := NewMatrix[float64](60, 85)
	a.Randomize(rng)
	b.Randomize(rng)
	c1 := NewMatrix[float64](130, 85)
	c2 := NewMatrix[float64](130, 85)
	if err := Gemm(c1, a, b); err != nil {
		t.Fatal(err)
	}
	gcfg, err := PlanGoto[float64](Host())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GotoGemm(c2, a, b, gcfg); err != nil {
		t.Fatal(err)
	}
	if !c1.AlmostEqual(c2, 60, 1e-12) {
		t.Fatal("CAKE and GOTO disagree")
	}
}

func TestHostPlatform(t *testing.T) {
	h := Host()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.Cores < 1 || h.LLCBytes < 1<<10 {
		t.Fatalf("implausible host: %+v", h)
	}
}

func TestPublicConstantsWired(t *testing.T) {
	if DimN.String() != "N" || DimM.String() != "M" || DimK.String() != "K" {
		t.Fatal("compute-dim re-exports")
	}
	cfg := Config{Cores: 1, MC: 8, KC: 8, Alpha: 1, MR: 8, NR: 8, Dim: DimK, Order: schedule.OuterN}
	if cfg.Validate() != nil {
		t.Fatal("config alias broken")
	}
}

func TestGemmTPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	logicalA := NewMatrix[float32](50, 40)
	logicalB := NewMatrix[float32](40, 60)
	logicalA.Randomize(rng)
	logicalB.Randomize(rng)
	want := NewMatrix[float32](50, 60)
	NaiveGemm(want, logicalA, logicalB)

	c := NewMatrix[float32](50, 60)
	if err := GemmT(c, logicalA.Transpose(), logicalB.Transpose(), true, true); err != nil {
		t.Fatal(err)
	}
	if !c.AlmostEqual(want, 40, 1e-5) {
		t.Fatalf("public GemmT wrong: diff %g", c.MaxAbsDiff(want))
	}
	if err := GemmT(NewMatrix[float32](50, 60), logicalA, logicalB, true, false); err == nil {
		t.Fatal("dimension error not reported")
	}
}
