package cake

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func TestDefaultEngineConcurrentGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a, b := NewMatrix[float32](40, 30), NewMatrix[float32](30, 50)
	a.Randomize(rng)
	b.Randomize(rng)
	want := NewMatrix[float32](40, 50)
	NaiveGemm(want, a, b)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := NewMatrix[float32](40, 50)
			if err := Gemm(c, a, b); err != nil {
				errs <- err
				return
			}
			if !c.AlmostEqual(want, 30, 1e-4) {
				errs <- errors.New("concurrent public Gemm wrong")
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestNewEnginePublicSurface(t *testing.T) {
	e, err := NewEngine(EngineOptions{Platform: Host(), Name: "api-test"})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(22))
	a, b := NewMatrix[float64](20, 20), NewMatrix[float64](20, 20)
	a.Randomize(rng)
	b.Randomize(rng)
	c := NewMatrix[float64](20, 20)
	if _, err := EngineGemmScaled(e, c, a, b, false, false, 2, 0); err != nil {
		t.Fatal(err)
	}
	want := NewMatrix[float64](20, 20)
	NaiveGemm(want, a, b)
	want.Scale(2)
	if !c.AlmostEqual(want, 20, 1e-12) {
		t.Fatal("EngineGemmScaled wrong")
	}
	if tier := e.TierFor(8, 8, 8, 4); tier != TierTiny {
		t.Fatalf("8³ = %v, want TierTiny", tier)
	}
	if e.Counters().TierTiny < 1 {
		t.Fatal("tier counter not exported")
	}
}

func TestExecutorInUseErrorExported(t *testing.T) {
	if ErrExecutorInUse == nil || ErrEngineSaturated == nil || ErrEngineClosed == nil {
		t.Fatal("sentinel errors not wired")
	}
}
