// Package cake is a from-scratch Go implementation of CAKE — matrix
// multiplication using constant-bandwidth (CB) blocks (Kung, Natesh &
// Sabot, SC '21) — together with everything needed to reproduce the paper's
// evaluation: the GOTO baseline the vendor BLAS libraries implement, an
// analytical CB-block theory, a K-first block scheduler, an architecture
// simulator in the style of the paper's Section 6.2, and experiment drivers
// for every table and figure.
//
// # Quick start
//
//	a := cake.NewMatrix[float32](m, k)
//	b := cake.NewMatrix[float32](k, n)
//	c := cake.NewMatrix[float32](m, n)
//	// ... fill a and b ...
//	if err := cake.Gemm(c, a, b); err != nil { ... }
//
// Gemm plans CB-block shape and schedule for the host automatically; use
// Plan/NewExecutor for explicit control, repeated multiplications, or to
// target one of the paper's Table 2 platform models.
package cake

import (
	"fmt"
	"io"
	"runtime"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gotoalg"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/pool"
)

// Scalar constrains matrix element types (float32 or float64).
type Scalar = matrix.Scalar

// Matrix is a dense row-major matrix (see internal/matrix for methods).
type Matrix[T Scalar] = matrix.Matrix[T]

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix[T Scalar](r, c int) *Matrix[T] { return matrix.New[T](r, c) }

// FromSlice wraps row-major data (length r*c) as a matrix without copying.
func FromSlice[T Scalar](r, c int, data []T) *Matrix[T] { return matrix.FromSlice(r, c, data) }

// NaiveGemm is the reference C += A×B (Algorithm 1), used as an oracle.
func NaiveGemm[T Scalar](c, a, b *Matrix[T]) { matrix.NaiveGemm(c, a, b) }

// Config is a fully resolved CAKE execution plan (CB block shape, schedule
// order, register tile, compute dimension).
type Config = core.Config

// Executor runs CAKE GEMMs with a fixed Config, reusing workers and packing
// buffers across calls.
type Executor[T Scalar] = core.Executor[T]

// Stats summarises one CAKE execution.
type Stats = core.Stats

// ExecutorOption tunes an Executor at construction time.
type ExecutorOption = core.Option

// WithPipeline enables (default) or disables the software pipeline that
// overlaps packing of the next CB block with compute of the current one and
// reuses packed panels shared between scheduled blocks. Disable it to get
// the strictly synchronous pack→compute executor.
func WithPipeline(on bool) ExecutorOption { return core.WithPipeline(on) }

// WithPanelCache keeps up to slots packed panels per operand resident, so a
// schedule that revisits a panel (the K-first snake does, on every M or N
// step) skips the repack. Implies pipelining; slots below 2 are raised to
// the double-buffering minimum.
func WithPanelCache(slots int) ExecutorOption { return core.WithPanelCache(slots) }

// TraceRecorder collects per-worker pack/compute/unpack spans from a traced
// execution: fixed ring buffers, an atomic cursor per worker, no locks and
// no allocation on the record path.
type TraceRecorder = obs.Recorder

// TraceSpan is one recorded phase execution.
type TraceSpan = obs.Span

// TraceProcess names one recorder's lane group in an exported trace.
type TraceProcess = obs.Process

// BandwidthTimeline is DRAM traffic bucketed into fixed time windows; its
// Stats method reports mean/peak bandwidth and the coefficient of
// variation — the empirical check of the paper's constant-bandwidth
// property (§3).
type BandwidthTimeline = obs.Timeline

// NewTraceRecorder returns a recorder sized for workers executor cores
// keeping the most recent spansPerWorker spans per lane (≤ 0 selects a
// default). Attach it with WithTrace (or gotoalg's equivalent), then export
// via WriteChromeTrace or reduce via NewBandwidthTimeline.
func NewTraceRecorder(workers, spansPerWorker int) *TraceRecorder {
	return obs.NewRecorder(workers, spansPerWorker)
}

// WithTrace attaches a span recorder to a CAKE executor: every
// pack/compute/unpack unit and every panel-cache hit is recorded with
// worker id, CB-block coordinates and bytes moved, and pool jobs run under
// {executor=cake, phase} pprof labels. Tracing off (no recorder) costs the
// executor one predictable branch per instrumentation point.
func WithTrace(rec *TraceRecorder) ExecutorOption { return core.WithTrace(rec) }

// WriteChromeTrace exports recorded spans as Chrome Trace Event Format
// JSON — load the file in https://ui.perfetto.dev (or chrome://tracing) to
// see per-worker lanes of pack/compute/unpack spans, pack/compute overlap,
// and panel-cache hit markers. Pass several processes (e.g. CAKE and GOTO
// runs of the same shape) to compare them side by side.
func WriteChromeTrace(w io.Writer, procs ...TraceProcess) error {
	return obs.WriteChromeTrace(w, procs...)
}

// NewBandwidthTimeline buckets a traced execution's DRAM traffic into the
// given number of windows spanning the run.
func NewBandwidthTimeline(rec *TraceRecorder, buckets int) BandwidthTimeline {
	return obs.NewTimelineN(rec.Spans(), buckets)
}

// EnableMetrics switches on the expvar-backed metrics registry: cumulative
// per-executor GEMM/block/bytes/time counters and pack/compute latency
// histograms published under the "cake_metrics" expvar map for long-running
// hosts (see internal/obs).
func EnableMetrics() { obs.EnableMetrics() }

// DebugServer is a running debug/observability HTTP server (see ServeDebug).
type DebugServer = obs.DebugServer

// ServeDebug starts the stdlib-only debug HTTP server on addr: /metrics
// (Prometheus text), /debug/vars (expvar), /debug/pprof/, /debug/trace.json
// (Chrome trace of registered recorders), /debug/timeline.json (bucketed
// bandwidth timelines) and /debug/conformance.json (latest model-conformance
// report). Alternatively set CAKE_DEBUG_ADDR to start it at init.
func ServeDebug(addr string) (*DebugServer, error) { return obs.Serve(addr) }

// RegisterTraceProcess makes a recorder's spans available to the debug
// server's trace and timeline endpoints under the given process name;
// re-registering a name replaces its recorder in place.
func RegisterTraceProcess(name string, rec *TraceRecorder) { obs.RegisterProcess(name, rec) }

// Compute dimensions (Section 3): N is the paper's primary formulation.
const (
	DimN = core.DimN
	DimM = core.DimM
	DimK = core.DimK
)

// Platform describes a CPU (cache sizes, bandwidths, core count). The
// paper's Table 2 machines are available via IntelI9, AMDRyzen9 and
// ARMCortexA53; Host models the machine the process runs on.
type Platform = platform.Platform

// Table 2 platform models.
var (
	IntelI9      = platform.IntelI9
	AMDRyzen9    = platform.AMDRyzen9
	ARMCortexA53 = platform.ARMCortexA53
)

// Platforms returns all Table 2 platform models.
func Platforms() []*Platform { return platform.All() }

// Host returns a platform model for the current machine, reading cache
// geometry from sysfs where available and falling back to conservative
// desktop defaults. Core count is GOMAXPROCS.
func Host() *Platform { return hostPlatform() }

// Plan derives a CAKE configuration for a GEMM of the given shape on a
// platform (Sections 3, 4.2–4.4: mc×kc from the private cache, the CB block
// against the LLC LRU rule, α from DRAM bandwidth).
func Plan[T Scalar](pl *Platform, m, k, n int) (Config, error) {
	var zero T
	return core.Plan(pl, m, k, n, elemSize(zero))
}

// NewExecutor prepares a reusable CAKE executor for cfg.
func NewExecutor[T Scalar](cfg Config, opts ...ExecutorOption) (*Executor[T], error) {
	return core.NewExecutor[T](cfg, nil, opts...)
}

// Gemm computes C += A×B with CAKE through the process-wide engine:
// problems are dispatched by size tier (direct microkernel for L1-resident
// shapes, one CB block for cache-resident ones, full pipelined CAKE beyond)
// and concurrent callers each get their own leased executor, so Gemm is
// safe to call from any number of goroutines.
func Gemm[T Scalar](c, a, b *Matrix[T]) error {
	matrix.CheckMul(c, a, b)
	e, err := DefaultEngine()
	if err != nil {
		return err
	}
	_, err = engine.Gemm(e, c, a, b)
	return err
}

// GemmWithConfig computes C += A×B with an explicit CAKE configuration.
func GemmWithConfig[T Scalar](c, a, b *Matrix[T], cfg Config) (Stats, error) {
	return core.Gemm(c, a, b, cfg)
}

// GemmT computes C += op(A)×op(B), transposing an operand during packing
// when its flag is set (A stored K×M when transA, B stored N×K when
// transB). Like Gemm it routes through the process-wide engine and is safe
// for concurrent callers.
func GemmT[T Scalar](c, a, b *Matrix[T], transA, transB bool) error {
	e, err := DefaultEngine()
	if err != nil {
		return err
	}
	_, err = engine.GemmT(e, c, a, b, transA, transB)
	return err
}

// GotoConfig is the GOTO baseline's blocking (Section 4.1).
type GotoConfig = gotoalg.Config

// GotoStats summarises one GOTO execution.
type GotoStats = gotoalg.Stats

// PlanGoto derives the GOTO blocking for a platform.
func PlanGoto[T Scalar](pl *Platform) (GotoConfig, error) {
	var zero T
	return gotoalg.Plan(pl, elemSize(zero))
}

// GotoOption tunes a GOTO execution at construction time.
type GotoOption = gotoalg.Option

// WithGotoTrace attaches a span recorder to a GOTO execution (the baseline
// counterpart of WithTrace); its compute spans carry the partial-C
// streaming traffic that makes GOTO's bandwidth timeline spiky.
func WithGotoTrace(rec *TraceRecorder) GotoOption { return gotoalg.WithTrace(rec) }

// GotoGemm computes C += A×B with the GOTO algorithm (the baseline MKL,
// ARMPL and OpenBLAS implement).
func GotoGemm[T Scalar](c, a, b *Matrix[T], cfg GotoConfig, opts ...GotoOption) (GotoStats, error) {
	return gotoalg.Gemm(c, a, b, cfg, opts...)
}

// NewPool creates a worker pool that multiple executors can share (one
// worker per simulated core). workers <= 0 selects GOMAXPROCS.
func NewPool(workers int) *pool.Pool { return pool.New(workers) }

// NewExecutorWithPool prepares an executor on a shared pool.
func NewExecutorWithPool[T Scalar](cfg Config, p *pool.Pool, opts ...ExecutorOption) (*Executor[T], error) {
	return core.NewExecutor[T](cfg, p, opts...)
}

// Engine is the process-wide concurrent GEMM front end: size-tiered
// dispatch (direct microkernel / single CB block / full pipelined CAKE),
// per-tier executor leasing, and §4.3 core partitioning with admission
// queueing. Build one with NewEngine for explicit control, or use
// DefaultEngine (which Gemm, GemmT, SGemm and DGemm share).
type Engine = engine.Engine

// EngineOptions configures NewEngine.
type EngineOptions = engine.Options

// EngineTier is a problem-size class with its own dispatch path.
type EngineTier = engine.Tier

// Engine size tiers.
const (
	TierTiny  = engine.TierTiny
	TierSmall = engine.TierSmall
	TierLarge = engine.TierLarge
)

// Engine and executor sentinel errors.
var (
	// ErrEngineSaturated: admission queue at EngineOptions.MaxQueue.
	ErrEngineSaturated = engine.ErrSaturated
	// ErrEngineClosed: request after Engine.Close.
	ErrEngineClosed = engine.ErrClosed
	// ErrExecutorInUse: concurrent Gemm on a single-flight Executor — lease
	// executors through an Engine instead.
	ErrExecutorInUse = core.ErrInUse
)

// Resident-operand store sentinel errors (EngineRegisterB and friends).
var (
	// ErrOperandExists: EngineRegisterB of an id that is still registered.
	ErrOperandExists = engine.ErrOperandExists
	// ErrOperandNotRegistered: an id the engine has never held.
	ErrOperandNotRegistered = engine.ErrOperandNotRegistered
	// ErrOperandEvicted: the id was registered but lost to LRU eviction under
	// the resident byte budget; re-register to serve it again.
	ErrOperandEvicted = engine.ErrOperandEvicted
	// ErrOperandBudget: the operand cannot fit the resident byte budget.
	ErrOperandBudget = engine.ErrOperandBudget
	// ErrOperandType: EngineGemmResident with a scalar type different from
	// the one the id was registered with.
	ErrOperandType = engine.ErrOperandType
)

// NewEngine builds a concurrent GEMM engine. A nil EngineOptions.Platform
// detects the host.
func NewEngine(opts EngineOptions) (*Engine, error) { return engine.NewEngine(opts) }

// EngineGemm computes C += A×B through an engine.
func EngineGemm[T Scalar](e *Engine, c, a, b *Matrix[T]) (Stats, error) {
	return engine.Gemm(e, c, a, b)
}

// EngineGemmScaled computes C = α·op(A)×op(B) + β·C through an engine.
func EngineGemmScaled[T Scalar](e *Engine, c, a, b *Matrix[T], transA, transB bool, alpha, beta T) (Stats, error) {
	return engine.GemmScaled(e, c, a, b, transA, transB, alpha, beta)
}

// StridedBatch describes a uniform batched GEMM whose operands sit at
// constant element strides in flat backing slices (call i's A starts at
// i·StrideA, and so on — the im2col / attention layout). A zero stride
// shares that operand across the whole batch, which the batch path packs
// exactly once.
type StridedBatch[T Scalar] = engine.StridedBatch[T]

// ErrBatchShape: batch call slices empty or of mismatched lengths.
var ErrBatchShape = core.ErrBatchShape

// GemmBatch computes C[i] += A[i]×B[i] for every i through the process-wide
// engine as ONE request: the whole batch takes a single admission-queue slot
// and a single executor lease, and operands shared between consecutive calls
// (the same *Matrix pointer) are packed once. Results are bit-exact with
// looping Gemm over the calls.
func GemmBatch[T Scalar](cs, as, bs []*Matrix[T]) (Stats, error) {
	e, err := DefaultEngine()
	if err != nil {
		return Stats{}, err
	}
	return engine.GemmBatch(e, cs, as, bs)
}

// GemmBatchScaled computes C[i] = α·op(A[i])×op(B[i]) + β·C[i] for every i
// through the process-wide engine as one request. Transposes and scalars are
// batch-uniform.
func GemmBatchScaled[T Scalar](cs, as, bs []*Matrix[T], transA, transB bool, alpha, beta T) (Stats, error) {
	e, err := DefaultEngine()
	if err != nil {
		return Stats{}, err
	}
	return engine.GemmBatchScaled(e, cs, as, bs, transA, transB, alpha, beta)
}

// EngineGemmBatch computes C[i] += A[i]×B[i] for every i through an engine
// as one request (one admission, one lease, shared operands packed once).
func EngineGemmBatch[T Scalar](e *Engine, cs, as, bs []*Matrix[T]) (Stats, error) {
	return engine.GemmBatch(e, cs, as, bs)
}

// EngineGemmBatchScaled computes C[i] = α·op(A[i])×op(B[i]) + β·C[i] for
// every i through an engine as one request.
func EngineGemmBatchScaled[T Scalar](e *Engine, cs, as, bs []*Matrix[T], transA, transB bool, alpha, beta T) (Stats, error) {
	return engine.GemmBatchScaled(e, cs, as, bs, transA, transB, alpha, beta)
}

// EngineGemmBatchStrided computes C[i] = α·A[i]×B[i] + β·C[i] over a strided
// batch layout as one engine request (see StridedBatch).
func EngineGemmBatchStrided[T Scalar](e *Engine, sb StridedBatch[T], alpha, beta T) (Stats, error) {
	return engine.GemmBatchStrided(e, sb, alpha, beta)
}

// EngineGemmBatchResident computes C[i] += A[i]×B_id for every i against a
// resident operand as one engine request: the operand is pinned once before
// the first call and released after the last, so eviction can never split a
// batch, and no call pays B packing.
func EngineGemmBatchResident[T Scalar](e *Engine, cs, as []*Matrix[T], id string) (Stats, error) {
	return engine.GemmBatchResident(e, cs, as, id)
}

// EngineGemmBatchResidentScaled computes C[i] = α·op(A[i])×B_id + β·C[i]
// against a resident operand as one engine request.
func EngineGemmBatchResidentScaled[T Scalar](e *Engine, cs, as []*Matrix[T], id string, transA bool, alpha, beta T) (Stats, error) {
	return engine.GemmBatchResidentScaled(e, cs, as, id, transA, alpha, beta)
}

// EngineRegisterB packs the weight operand B (stored K×N) once into the
// engine's per-tier CAKE panel layouts and keeps the panels resident across
// requests under the engine's byte budget (EngineOptions.ResidentBudgetBytes,
// strict LRU eviction of unpinned operands). Serving calls against the id
// via EngineGemmResident skip B packing entirely — the weights-serving
// pattern of the paper's DNN-inference motivation. A live id fails with
// ErrOperandExists; EngineReleaseB first to replace it.
func EngineRegisterB[T Scalar](e *Engine, id string, b *Matrix[T]) error {
	return engine.RegisterB(e, id, b)
}

// EngineRegisterBT is EngineRegisterB for an operand in either storage
// order: when transB, b holds Bᵀ (N×K — how DNN weight matrices usually
// ship). The strided transpose gather is paid once here; serving calls never
// see it.
func EngineRegisterBT[T Scalar](e *Engine, id string, b *Matrix[T], transB bool) error {
	return engine.RegisterBT(e, id, b, transB)
}

// EngineReleaseB deregisters a resident operand. Panels pinned by in-flight
// GEMMs stay readable until those calls finish; the id is immediately
// re-registrable.
func EngineReleaseB(e *Engine, id string) error { return e.ReleaseB(id) }

// EngineGemmResident computes C += A×B_id against the resident operand
// registered under id, bit-exact with the fresh-pack path but without
// re-packing B. A registered id that was evicted under budget pressure fails
// with ErrOperandEvicted (re-register and retry).
func EngineGemmResident[T Scalar](e *Engine, c, a *Matrix[T], id string) (Stats, error) {
	return engine.GemmResident(e, c, a, id)
}

// EngineGemmResidentScaled computes C = α·op(A)×B_id + β·C against a
// resident operand.
func EngineGemmResidentScaled[T Scalar](e *Engine, c, a *Matrix[T], id string, transA bool, alpha, beta T) (Stats, error) {
	return engine.GemmResidentScaled(e, c, a, id, transA, alpha, beta)
}

func elemSize[T Scalar](v T) int {
	switch any(v).(type) {
	case float32:
		return 4
	case float64:
		return 8
	default:
		panic(fmt.Sprintf("cake: unsupported element type %T", v))
	}
}

// defaultHostCores is a test seam.
var defaultHostCores = func() int { return runtime.GOMAXPROCS(0) }
