package cake

// Cross-module integration tests: every GEMM driver against every other,
// through the public API, over fuzzed shapes, orientations and reuse
// patterns.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gotoalg"
	"repro/internal/matrix"
	"repro/internal/sim"
	"repro/internal/tuner"
)

// TestAllDriversAgreeFuzz runs naive, blocked, CAKE (all compute dims, all
// operand orientations) and GOTO on random problems and demands agreement.
func TestAllDriversAgreeFuzz(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(70), 1+rng.Intn(70), 1+rng.Intn(70)
		a := matrix.New[float64](m, k)
		b := matrix.New[float64](k, n)
		a.Randomize(rng)
		b.Randomize(rng)
		want := matrix.New[float64](m, n)
		matrix.NaiveGemm(want, a, b)

		ccfg := core.Config{
			Cores: 1 + rng.Intn(3), MC: 8 * (1 + rng.Intn(2)), KC: 1 + rng.Intn(20),
			Alpha: 1 + rng.Float64(), MR: 8, NR: 8,
			Dim: core.ComputeDim(rng.Intn(3)), Order: core.OrderAuto,
		}
		transA, transB := rng.Intn(2) == 1, rng.Intn(2) == 1
		opA, opB := a, b
		if transA {
			opA = a.Transpose()
		}
		if transB {
			opB = b.Transpose()
		}
		cCake := matrix.New[float64](m, n)
		if _, err := core.GemmT(cCake, opA, opB, ccfg, transA, transB); err != nil {
			t.Logf("cake: %v", err)
			return false
		}
		if !cCake.AlmostEqual(want, k, 1e-11) {
			t.Logf("cake mismatch cfg=%v dims=%d,%d,%d tA=%v tB=%v", ccfg, m, k, n, transA, transB)
			return false
		}

		gcfg := gotoalg.Config{Cores: 1 + rng.Intn(3), MC: 16, KC: 1 + rng.Intn(20), NC: 8 * (1 + rng.Intn(4)), MR: 8, NR: 8}
		cGoto := matrix.New[float64](m, n)
		if _, err := gotoalg.Gemm(cGoto, a, b, gcfg); err != nil {
			t.Logf("goto: %v", err)
			return false
		}
		return cGoto.AlmostEqual(want, k, 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestExecutorShrinkGrowSequence stresses buffer reuse: alternating large
// and small problems (and orientations) through one executor must never
// read stale packed data.
func TestExecutorShrinkGrowSequence(t *testing.T) {
	cfg := core.Config{Cores: 2, MC: 16, KC: 16, Alpha: 1, MR: 8, NR: 8, Order: core.OrderAuto}
	e, err := core.NewExecutor[float64](cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(123))
	dims := [][3]int{{90, 80, 70}, {3, 3, 3}, {64, 1, 64}, {17, 90, 5}, {90, 80, 70}, {1, 1, 1}}
	for i, d := range dims {
		m, k, n := d[0], d[1], d[2]
		a := matrix.New[float64](m, k)
		b := matrix.New[float64](k, n)
		a.Randomize(rng)
		b.Randomize(rng)
		want := matrix.New[float64](m, n)
		matrix.NaiveGemm(want, a, b)
		c := matrix.New[float64](m, n)
		ta := i%2 == 1
		opA := a
		if ta {
			opA = a.Transpose()
		}
		if _, err := e.GemmT(c, opA, b, ta, false); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if !c.AlmostEqual(want, k, 1e-11) {
			t.Fatalf("step %d (%v): stale buffer suspected, diff %g", i, d, c.MaxAbsDiff(want))
		}
	}
}

// TestPlannerToSimulatorRoundTrip checks the pieces the experiments pipeline
// chains together: a planned config must produce a valid simulator workload
// whose MAC count conserves the problem volume on every platform.
func TestPlannerToSimulatorRoundTrip(t *testing.T) {
	const m, k, n = 1000, 900, 1100
	for _, pl := range Platforms() {
		met, cfg, err := experiments.SimCake(pl, pl.Cores, m, k, n)
		if err != nil {
			t.Fatalf("%s: %v", pl.Name, err)
		}
		if met.MACs != int64(m)*int64(k)*int64(n) {
			t.Fatalf("%s: MAC conservation broken: %d", pl.Name, met.MACs)
		}
		if met.DRAMReadBytes <= 0 || met.Cycles <= 0 {
			t.Fatalf("%s: degenerate metrics %+v", pl.Name, met)
		}
		// The planned block must have been LLC-legal.
		if mem := cfg.Shape().LocalMemElems() * 4; mem > float64(pl.LLCBytes) {
			t.Fatalf("%s: plan exceeds LLC", pl.Name)
		}
	}
}

// TestSimulatorMonotonicity: more bandwidth or more cores must never slow
// the simulated machine down.
func TestSimulatorMonotonicity(t *testing.T) {
	pl := IntelI9()
	base, _, err := experiments.SimCake(pl, 4, 1024, 1024, 1024)
	if err != nil {
		t.Fatal(err)
	}
	fast := *pl
	fast.DRAMBW *= 4
	quickBW, _, err := experiments.SimCake(&fast, 4, 1024, 1024, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if quickBW.Cycles > base.Cycles {
		t.Fatalf("4x DRAM bandwidth slowed the machine: %d vs %d", quickBW.Cycles, base.Cycles)
	}
	moreCores, _, err := experiments.SimCake(pl, 8, 1024, 1024, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if moreCores.Cycles > base.Cycles {
		t.Fatalf("8 cores slower than 4: %d vs %d", moreCores.Cycles, base.Cycles)
	}
}

// TestDNNLayerSequence mirrors the dnn example as a test: a chain of
// im2col-shaped GEMMs (M small, K moderate, N large) through one executor,
// each verified — the drop-in library usage of Section 5.
func TestDNNLayerSequence(t *testing.T) {
	cfg, err := Plan[float32](Host(), 128, 1152, 1024)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewExecutor[float32](cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{{32, 27, 1024}, {64, 288, 1024}, {128, 576, 1024}, {128, 1152, 1024}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		w := NewMatrix[float32](m, k)
		x := NewMatrix[float32](k, n)
		w.Randomize(rng)
		x.Randomize(rng)
		out := NewMatrix[float32](m, n)
		want := NewMatrix[float32](m, n)
		NaiveGemm(want, w, x)
		if _, err := e.Gemm(out, w, x); err != nil {
			t.Fatal(err)
		}
		if !out.AlmostEqual(want, k, 1e-4) {
			t.Fatalf("layer %v wrong: %g", s, out.MaxAbsDiff(want))
		}
	}
}

// TestSearchConsistentWithFigures: the tuner's best candidate must never
// beat the figures' CAKE plan by a large factor — if it did, the
// evaluation curves would be understating CAKE.
func TestSearchConsistentWithFigures(t *testing.T) {
	pl := ARMCortexA53()
	res, err := tuner.Search(pl, pl.Cores, 1500, 1500, 1500, tuner.Options{MCStep: 8, MCMax: 96})
	if err != nil {
		t.Fatal(err)
	}
	if res.AnalyticShare() < 0.85 {
		t.Fatalf("figures' plan at %.0f%% of search optimum — curves understate CAKE", 100*res.AnalyticShare())
	}
}

// TestWorkloadAgainstRealStats: the simulator's CAKE workload compiler and
// the real executor must agree on schedule-level accounting (grid and
// total packed elements) since both derive from the same Config geometry.
func TestWorkloadAgainstRealStats(t *testing.T) {
	cfg := core.Config{Cores: 2, MC: 16, KC: 16, Alpha: 1, MR: 8, NR: 8, Order: core.OrderAuto}
	const m, k, n = 70, 50, 90
	a := matrix.New[float64](m, k)
	b := matrix.New[float64](k, n)
	c := matrix.New[float64](m, n)
	st, err := core.Gemm(c, a, b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := sim.CakeWorkload{P: 2, MC: 16, KC: 16, Alpha: 1, MR: 8, NR: 8, ElemBytes: 8}
	ops, err := sim.CakeOps(w, m, k, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != st.Blocks {
		t.Fatalf("block counts differ: sim %d vs real %d", len(ops), st.Blocks)
	}
	var macs int64
	for _, op := range ops {
		macs += op.MACs
	}
	if macs != int64(m)*int64(k)*int64(n) {
		t.Fatalf("sim MACs %d", macs)
	}
}
