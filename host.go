package cake

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/platform"
)

// init starts the debug/observability server when CAKE_DEBUG_ADDR is set
// (e.g. "localhost:6060"), so any binary importing this package gets the
// live surface — metrics, pprof, traces, conformance — with zero code. A
// bind failure is reported on stderr, never fatal: observability must not
// take the host down.
func init() {
	addr, ok := os.LookupEnv("CAKE_DEBUG_ADDR")
	if !ok || strings.TrimSpace(addr) == "" {
		return
	}
	obs.EnableMetrics()
	if _, err := obs.Serve(strings.TrimSpace(addr)); err != nil {
		fmt.Fprintf(os.Stderr, "cake: CAKE_DEBUG_ADDR=%s: %v\n", addr, err)
	}
}

// hostPlatform builds a Platform for the machine the process runs on; the
// detection logic (sysfs cache scan, CAKE_DRAM_BW / CAKE_CLOCK_HZ overrides)
// lives in internal/platform so internal packages — notably the engine's
// tier thresholds — can use it without importing this package.
func hostPlatform() *Platform {
	return platform.DetectHost(defaultHostCores())
}

// envFloat is re-exported for this package's tests; see platform.EnvFloat.
func envFloat(name string) (float64, bool) {
	return platform.EnvFloat(name)
}

var (
	defaultEngineOnce sync.Once
	defaultEngine     *engine.Engine
	defaultEngineErr  error
)

// DefaultEngine returns the process-wide concurrent GEMM engine, built
// lazily for the host platform on first use. Gemm, GemmT, SGemm and DGemm
// all route through it, so concurrent callers of the package-level entry
// points get leased executors and size-tiered dispatch automatically. The
// engine lives for the process; it is never closed.
func DefaultEngine() (*Engine, error) {
	defaultEngineOnce.Do(func() {
		defaultEngine, defaultEngineErr = engine.NewEngine(engine.Options{
			Platform:        hostPlatform(),
			Name:            "default",
			LargePanelSlots: 8,
		})
	})
	return defaultEngine, defaultEngineErr
}
