package cake

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/matrix"
)

func TestSGemmKnownValues(t *testing.T) {
	// C = 2·A×B + 3·C with 2×2 operands.
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := []float32{1, 1, 1, 1}
	if err := SGemm(false, false, 2, 2, 2, 2, a, 2, b, 2, 3, c, 2); err != nil {
		t.Fatal(err)
	}
	want := []float32{2*19 + 3, 2*22 + 3, 2*43 + 3, 2*50 + 3}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c[%d]=%v want %v", i, c[i], want[i])
		}
	}
}

func TestDGemmBetaZeroIgnoresGarbage(t *testing.T) {
	// β=0 must clear C without reading it — NaNs in C must not leak.
	a := []float64{1, 0, 0, 1}
	b := []float64{2, 3, 4, 5}
	c := []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	if err := DGemm(false, false, 2, 2, 2, 1, a, 2, b, 2, 0, c, 2); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4, 5}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c[%d]=%v want %v", i, c[i], want[i])
		}
	}
}

func TestSGemmAlphaZeroOnlyScales(t *testing.T) {
	a := []float32{9, 9, 9, 9}
	b := []float32{9, 9, 9, 9}
	c := []float32{1, 2, 3, 4}
	if err := SGemm(false, false, 2, 2, 2, 0, a, 2, b, 2, 2, c, 2); err != nil {
		t.Fatal(err)
	}
	want := []float32{2, 4, 6, 8}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c[%d]=%v want %v", i, c[i], want[i])
		}
	}
}

func TestDGemmStridedOperands(t *testing.T) {
	// Leading dimensions larger than the logical widths: the padding
	// columns must be neither read into the product nor written.
	const lda, ldb, ldc = 5, 6, 7
	m, n, k := 3, 4, 2
	a := make([]float64, m*lda)
	b := make([]float64, k*ldb)
	c := make([]float64, m*ldc)
	for i := range a {
		a[i] = 99 // padding sentinel; logical region overwritten below
	}
	for i := range b {
		b[i] = 99
	}
	rng := rand.New(rand.NewSource(5))
	la := matrix.FromStrided(m, k, lda, a)
	lb := matrix.FromStrided(k, n, ldb, b)
	la.Randomize(rng)
	lb.Randomize(rng)
	for i := range c {
		c[i] = -1
	}

	if err := DGemm(false, false, m, n, k, 1, a, lda, b, ldb, 0, c, ldc); err != nil {
		t.Fatal(err)
	}
	want := matrix.New[float64](m, n)
	matrix.NaiveGemm(want, la, lb)
	got := matrix.FromStrided(m, n, ldc, c)
	if !got.Clone().AlmostEqual(want, k, 1e-12) {
		t.Fatalf("strided gemm wrong: %g", got.Clone().MaxAbsDiff(want))
	}
	// Padding columns of C untouched.
	for i := 0; i < m; i++ {
		for j := n; j < ldc; j++ {
			if c[i*ldc+j] != -1 {
				t.Fatalf("padding written at (%d,%d)", i, j)
			}
		}
	}
}

func TestBlasGemmQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := 1+rng.Intn(40), 1+rng.Intn(40), 1+rng.Intn(40)
		transA, transB := rng.Intn(2) == 1, rng.Intn(2) == 1
		alpha := float64(rng.Intn(5)) - 2
		beta := float64(rng.Intn(3)) - 1

		logicalA := matrix.New[float64](m, k)
		logicalB := matrix.New[float64](k, n)
		logicalA.Randomize(rng)
		logicalB.Randomize(rng)
		c0 := matrix.New[float64](m, n)
		c0.Randomize(rng)

		// Reference: want = alpha*A*B + beta*c0.
		want := matrix.New[float64](m, n)
		matrix.NaiveGemm(want, logicalA, logicalB)
		for i := range want.Data {
			want.Data[i] = alpha*want.Data[i] + beta*c0.Data[i]
		}

		aStore := logicalA
		if transA {
			aStore = logicalA.Transpose()
		}
		bStore := logicalB
		if transB {
			bStore = logicalB.Transpose()
		}
		c := c0.Clone()
		err := DGemm(transA, transB, m, n, k, alpha, aStore.Data, aStore.Stride,
			bStore.Data, bStore.Stride, beta, c.Data, c.Stride)
		if err != nil {
			t.Logf("err: %v", err)
			return false
		}
		return c.AlmostEqual(want, k, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBlasGemmBadArgs(t *testing.T) {
	buf := make([]float32, 16)
	if err := SGemm(false, false, 0, 2, 2, 1, buf, 2, buf, 2, 1, buf, 2); err == nil {
		t.Fatal("m=0 accepted")
	}
	if err := SGemm(false, false, 4, 4, 4, 1, buf, 2, buf, 4, 1, buf, 4); err == nil {
		t.Fatal("lda < k accepted")
	}
	if err := SGemm(false, false, 4, 4, 4, 1, buf, 4, buf, 4, 1, buf[:4], 4); err == nil {
		t.Fatal("short C accepted")
	}
}

func TestFromStrided(t *testing.T) {
	data := []float64{1, 2, 0, 3, 4, 0}
	m := matrix.FromStrided(2, 2, 3, data)
	if m.At(1, 1) != 4 || m.At(0, 1) != 2 {
		t.Fatal("FromStrided layout")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for stride < cols")
		}
	}()
	matrix.FromStrided(2, 4, 3, data)
}

func TestMatrixScale(t *testing.T) {
	m := matrix.FromSlice(2, 2, []float64{1, 2, 3, 4})
	m.Scale(2)
	if m.At(1, 1) != 8 {
		t.Fatal("Scale")
	}
	m.Scale(0)
	if m.At(0, 0) != 0 {
		t.Fatal("Scale to zero")
	}
}
