package cake_test

import (
	"fmt"

	cake "repro"
)

// ExampleGemm multiplies two small matrices with the one-shot API.
func ExampleGemm() {
	a := cake.FromSlice(2, 2, []float32{1, 2, 3, 4})
	b := cake.FromSlice(2, 2, []float32{5, 6, 7, 8})
	c := cake.NewMatrix[float32](2, 2)
	if err := cake.Gemm(c, a, b); err != nil {
		panic(err)
	}
	fmt.Println(c.At(0, 0), c.At(0, 1))
	fmt.Println(c.At(1, 0), c.At(1, 1))
	// Output:
	// 19 22
	// 43 50
}

// ExamplePlan shows the CB block the theory selects for a Table 2 machine.
func ExamplePlan() {
	cfg, err := cake.Plan[float32](cake.IntelI9(), 23040, 23040, 23040)
	if err != nil {
		panic(err)
	}
	fmt.Println(cfg)
	fmt.Println(cfg.Shape())
	// Output:
	// cake{p=10 mc=168 kc=176 α=1 tile=8x8 dim=N}
	// CB[1680x176x1680 p=10 mc=168 alpha=1]
}

// ExampleGemmT multiplies with a transposed left operand (A stored K×M).
func ExampleGemmT() {
	// Logical A is 2×3; we store its transpose (3×2).
	aT := cake.FromSlice(3, 2, []float64{1, 4, 2, 5, 3, 6})
	b := cake.FromSlice(3, 1, []float64{1, 1, 1})
	c := cake.NewMatrix[float64](2, 1)
	if err := cake.GemmT(c, aT, b, true, false); err != nil {
		panic(err)
	}
	fmt.Println(c.At(0, 0), c.At(1, 0))
	// Output:
	// 6 15
}
