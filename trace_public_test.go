package cake

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
)

// TestTracePublicAPI drives the whole observability surface through the
// public package: record a CAKE and a GOTO run, export Chrome trace JSON,
// reduce to a bandwidth timeline.
func TestTracePublicAPI(t *testing.T) {
	const m, k, n = 60, 50, 60
	rng := rand.New(rand.NewSource(44))
	a := NewMatrix[float32](m, k)
	b := NewMatrix[float32](k, n)
	a.Randomize(rng)
	b.Randomize(rng)

	cfg := Config{Cores: 2, MC: 16, KC: 16, Alpha: 1, MR: 8, NR: 8}
	rec := NewTraceRecorder(cfg.Cores, 0)
	e, err := NewExecutor[float32](cfg, WithTrace(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	c := NewMatrix[float32](m, n)
	if _, err := e.Gemm(c, a, b); err != nil {
		t.Fatal(err)
	}

	gotoRec := NewTraceRecorder(2, 0)
	gcfg := GotoConfig{Cores: 2, MC: 16, KC: 16, NC: 32, MR: 8, NR: 8}
	cg := NewMatrix[float32](m, n)
	if _, err := GotoGemm(cg, a, b, gcfg, WithGotoTrace(gotoRec)); err != nil {
		t.Fatal(err)
	}
	if !c.AlmostEqual(cg, k, 1e-4) {
		t.Fatal("traced CAKE and GOTO disagree")
	}

	var buf bytes.Buffer
	err = WriteChromeTrace(&buf,
		TraceProcess{Name: "cake", Rec: rec},
		TraceProcess{Name: "goto", Rec: gotoRec})
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("exported trace is not valid JSON")
	}
	for _, want := range []string{`"cake"`, `"goto"`, `"pack"`, `"compute"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("trace missing %s", want)
		}
	}

	tl := NewBandwidthTimeline(rec, 8)
	if st := tl.Stats(); st.TotalB <= 0 || st.MeanBps <= 0 {
		t.Fatalf("timeline stats empty: %+v", st)
	}
	EnableMetrics() // must not panic when called twice across tests
}

// TestServeDebugPublicAPI starts the debug server through the public
// wrappers and hits the endpoints a live operator would.
func TestServeDebugPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a := NewMatrix[float32](40, 32)
	b := NewMatrix[float32](32, 40)
	c := NewMatrix[float32](40, 40)
	a.Randomize(rng)
	b.Randomize(rng)

	cfg := Config{Cores: 2, MC: 16, KC: 16, Alpha: 1, MR: 8, NR: 8}
	rec := NewTraceRecorder(cfg.Cores, 0)
	e, err := NewExecutor[float32](cfg, WithTrace(rec))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Gemm(c, a, b); err != nil {
		t.Fatal(err)
	}
	RegisterTraceProcess("public-cake", rec)

	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/trace.json", "/debug/timeline.json"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if path == "/debug/trace.json" && !strings.Contains(string(body), "public-cake") {
			t.Fatalf("trace missing registered process: %s", body)
		}
	}
}
