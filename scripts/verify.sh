#!/usr/bin/env sh
# verify.sh — the repo's tier-1 gate plus the invariant and race gates.
# Run from anywhere; exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
UNFORMATTED=$(gofmt -l cmd internal)
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt: needs formatting:"
	echo "$UNFORMATTED"
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

# cake-vet: the repo's own invariant analyzers (internal/analysis). Clean
# output is a hard gate — see DESIGN.md §9 for the invariants and how to
# silence a finding legitimately.
echo "== cake-vet ./..."
go run ./cmd/cake-vet ./...

echo "== go test ./..."
go test ./...

# Race gate, two layers: every package runs under -race in -short mode
# (wall-clock-sensitive tests skip themselves there rather than being
# silently omitted), then the concurrency-critical packages run their full
# suites under -race.
echo "== go test -race -short ./..."
go test -race -short ./...

echo "== go test -race ./internal/pool ./internal/core ./internal/obs ./internal/engine ./internal/tenant"
go test -race ./internal/pool ./internal/core ./internal/obs ./internal/engine ./internal/tenant

# Resident-serving smoke: the pack-bypass benchmark must run end to end and
# produce a well-formed BENCH_resident.json (the artifact the gate below
# judges). Quick mode keeps it to a fraction of a second.
echo "== cake-bench -quick resident"
RESIDENT_TMP=$(mktemp -d)
go run ./cmd/cake-bench -quick -csv "$RESIDENT_TMP" resident
rm -rf "$RESIDENT_TMP"

# Deterministic self-check of the benchmark regression gate: the committed
# baseline compared against itself must always pass. Catches artifact-format
# drift without benchmarking the (noisy) CI host.
echo "== cake-bench check -candidate results/baseline"
go run ./cmd/cake-bench check -candidate results/baseline

echo "verify: OK"
