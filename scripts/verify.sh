#!/usr/bin/env sh
# verify.sh — the repo's tier-1 gate plus the invariant and race gates.
# Run from anywhere; exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
UNFORMATTED=$(gofmt -l cmd internal)
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt: needs formatting:"
	echo "$UNFORMATTED"
	exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

# cake-vet: the repo's own invariant analyzers (internal/analysis), including
# the profile-guided passes — hotcover replays the committed corpus profiles
# and demands //cake:hotpath coverage on hot functions, escapecheck
# cross-checks annotated functions against the compiler's escape analysis.
# The escape diagnostics are captured once into a temp file so the second
# invocation below exercises the cached-reuse path CI depends on. The -json
# summary is the gate: "ok" must be true (advisories never flip it) — see
# DESIGN.md §9 and §15 for the invariants and how to silence a finding.
echo "== cake-vet -json ./..."
VET_TMP=$(mktemp -d)
go run ./cmd/cake-vet -json -escape-log "$VET_TMP/escape.log" ./... >"$VET_TMP/summary.json"
if ! grep -q '"ok": true' "$VET_TMP/summary.json"; then
	echo "verify: cake-vet -json did not report ok:" >&2
	cat "$VET_TMP/summary.json" >&2
	rm -rf "$VET_TMP"
	exit 1
fi

# Profile-guided passes alone, against the cached escape log: the syntax-only
# fast path must stay clean and must not recapture.
echo "== cake-vet -run=hotcover,escapecheck (cached escape log)"
go run ./cmd/cake-vet -run=hotcover,escapecheck -escape-log "$VET_TMP/escape.log" ./...
rm -rf "$VET_TMP"

echo "== go test ./..."
go test ./...

# Race gate, two layers: every package runs under -race in -short mode
# (wall-clock-sensitive tests skip themselves there rather than being
# silently omitted), then the concurrency-critical packages run their full
# suites under -race.
echo "== go test -race -short ./..."
go test -race -short ./...

echo "== go test -race ./internal/pool ./internal/core ./internal/obs ./internal/engine ./internal/tenant"
go test -race ./internal/pool ./internal/core ./internal/obs ./internal/engine ./internal/tenant

# Resident-serving smoke: the pack-bypass benchmark must run end to end and
# produce a well-formed BENCH_resident.json (the artifact the gate below
# judges). Quick mode keeps it to a fraction of a second.
echo "== cake-bench -quick resident"
RESIDENT_TMP=$(mktemp -d)
go run ./cmd/cake-bench -quick -csv "$RESIDENT_TMP" resident
rm -rf "$RESIDENT_TMP"

# Batched-dispatch smoke: the one-lease batch benchmark must run end to end
# and produce a well-formed BENCH_batch.json (the artifact CompareBatch
# gates). Quick mode keeps it fast.
echo "== cake-bench -quick batch"
BATCH_TMP=$(mktemp -d)
go run ./cmd/cake-bench -quick -csv "$BATCH_TMP" batch
rm -rf "$BATCH_TMP"

# Deterministic self-check of the benchmark regression gate: the committed
# baseline compared against itself must always pass, and the machine-readable
# summary must say so. Catches artifact-format drift without benchmarking the
# (noisy) CI host. The committed corpus history feeds the trend verdicts as
# ADVISORY findings only: on a different host its cells judge as new-cell,
# and on the capture host they re-judge the committed epochs under whatever
# measurement weather recorded them — either way they describe the history,
# not the code under test, so they must not flip this deterministic gate.
# Gate on trend deliberately with a plain `cake-bench check` on a quiet host.
echo "== cake-bench check -candidate results/baseline -trend-advisory -json"
CHECK_OUT=$(mktemp)
go run ./cmd/cake-bench check -candidate results/baseline -trend-advisory -json >"$CHECK_OUT"
if ! grep -q '"ok": true' "$CHECK_OUT"; then
	echo "verify: check -json did not report ok:" >&2
	cat "$CHECK_OUT" >&2
	rm -f "$CHECK_OUT"
	exit 1
fi
rm -f "$CHECK_OUT"

# Corpus micro smoke: the 4-cell grid must run end to end and append a
# well-formed epoch to a throwaway store (the committed results/corpus
# trajectory is never touched here).
echo "== cake-bench corpus -quick -grid micro (throwaway store)"
CORPUS_TMP=$(mktemp -d)
go run ./cmd/cake-bench corpus -quick -grid micro -runs 1 \
	-store "$CORPUS_TMP/store" -out "$CORPUS_TMP/BENCH_corpus.json" -report
ls "$CORPUS_TMP"/store/0001-*.json >/dev/null
rm -rf "$CORPUS_TMP"

echo "verify: OK"
