#!/usr/bin/env sh
# verify.sh — the repo's tier-1 gate plus the race-sensitive packages.
# Run from anywhere; exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/pool ./internal/core ./internal/obs"
go test -race ./internal/pool ./internal/core ./internal/obs

echo "== go test -race ./internal/engine ./internal/tenant"
go test -race ./internal/engine ./internal/tenant

# Deterministic self-check of the benchmark regression gate: the committed
# baseline compared against itself must always pass. Catches artifact-format
# drift without benchmarking the (noisy) CI host.
echo "== cake-bench check -candidate results/baseline"
go run ./cmd/cake-bench check -candidate results/baseline

echo "verify: OK"
