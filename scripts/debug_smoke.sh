#!/usr/bin/env sh
# debug_smoke.sh — boots `cake-bench smoke` (debug server + engine + mixed
# workload + conformance report) and probes the observability surface from
# outside the process: every endpoint must answer 200 with valid JSON
# (/metrics: valid Prometheus text containing the request families).
# Exits non-zero on the first failing probe. Respects CAKE_DEBUG_ADDR.
set -eu
cd "$(dirname "$0")/.."

OUT=$(mktemp)
go run ./cmd/cake-bench smoke >"$OUT" 2>&1 &
SMOKE_PID=$!
trap 'kill "$SMOKE_PID" 2>/dev/null; wait "$SMOKE_PID" 2>/dev/null || true; rm -f "$OUT"' EXIT

# Wait for the readiness line (printed only after the workload and the
# conformance report, so every endpoint has content).
ADDR=
for _ in $(seq 1 120); do
	if ! kill -0 "$SMOKE_PID" 2>/dev/null; then
		echo "debug_smoke: smoke process died:" >&2
		cat "$OUT" >&2
		exit 1
	fi
	ADDR=$(sed -n 's/^SMOKE_ADDR=//p' "$OUT" | head -n 1)
	[ -n "$ADDR" ] && break
	sleep 1
done
if [ -z "$ADDR" ]; then
	echo "debug_smoke: no SMOKE_ADDR readiness line after 120s:" >&2
	cat "$OUT" >&2
	exit 1
fi
echo "debug_smoke: probing http://$ADDR"

# probe PATH [json] — 200 or fail; with json, the body must parse.
probe() {
	path=$1
	kind=${2:-raw}
	body=$(mktemp)
	code=$(curl -sS -o "$body" -w '%{http_code}' "http://$ADDR$path")
	if [ "$code" != "200" ]; then
		echo "debug_smoke: GET $path -> $code" >&2
		cat "$body" >&2
		rm -f "$body"
		exit 1
	fi
	if [ "$kind" = json ] && ! python3 -c 'import json,sys; json.load(sys.stdin)' <"$body"; then
		echo "debug_smoke: GET $path -> invalid JSON" >&2
		cat "$body" >&2
		rm -f "$body"
		exit 1
	fi
	rm -f "$body"
	echo "debug_smoke: GET $path ok"
}

probe /metrics
probe /debug/requests.json json
probe /debug/slo.json json
probe /debug/snapshots.json json
probe /debug/conformance.json json
probe /debug/vars json
probe /debug/trace.json json
probe /debug/timeline.json json
probe /debug/corpus.json json

# The request families must actually be exported, not just the page served.
if ! curl -sS "http://$ADDR/metrics" | grep -q '^cake_requests_total'; then
	echo "debug_smoke: /metrics is missing cake_requests_total" >&2
	exit 1
fi
if ! curl -sS "http://$ADDR/metrics" | grep -q '^cake_slo_burn_rate'; then
	echo "debug_smoke: /metrics is missing cake_slo_burn_rate" >&2
	exit 1
fi
if ! curl -sS "http://$ADDR/metrics" | grep -q '^cake_corpus_cell_gflops'; then
	echo "debug_smoke: /metrics is missing cake_corpus_cell_gflops" >&2
	exit 1
fi
if ! curl -sS "http://$ADDR/metrics" | grep -q '^cake_corpus_cell_trend'; then
	echo "debug_smoke: /metrics is missing cake_corpus_cell_trend" >&2
	exit 1
fi

# A record fetched from the ring must round-trip through ?reqid= lookup.
REQID=$(curl -sS "http://$ADDR/debug/requests.json" | python3 -c '
import json, sys
page = json.load(sys.stdin)
for e in page["engines"]:
    recs = e.get("records") or []
    if recs:
        print(e["engine"], recs[0]["id"])
        break
')
if [ -z "$REQID" ]; then
	echo "debug_smoke: /debug/requests.json has no records" >&2
	exit 1
fi
ENGINE=${REQID% *}
ID=${REQID#* }
probe "/debug/requests.json?engine=$ENGINE&reqid=$ID" json
echo "debug_smoke: reqid lookup ok (engine=$ENGINE id=$ID)"

echo "debug_smoke: all probes passed"
