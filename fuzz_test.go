package cake

// Native fuzz targets. Under plain `go test` the seed corpus runs as unit
// tests; `go test -fuzz=FuzzGemmAgainstNaive .` explores further.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/matrix"
	"repro/internal/schedule"
)

func FuzzGemmAgainstNaive(f *testing.F) {
	f.Add(int64(1), uint8(33), uint8(17), uint8(25), uint8(2), uint8(0))
	f.Add(int64(2), uint8(1), uint8(1), uint8(1), uint8(1), uint8(1))
	f.Add(int64(3), uint8(64), uint8(64), uint8(64), uint8(4), uint8(2))
	f.Add(int64(4), uint8(80), uint8(3), uint8(90), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, mm, kk, nn, cores, dim uint8) {
		m, k, n := int(mm)%96+1, int(kk)%96+1, int(nn)%96+1
		p := int(cores)%4 + 1
		cfg := core.Config{
			Cores: p, MC: 16, KC: 16, Alpha: 1, MR: 8, NR: 8,
			Dim: core.ComputeDim(dim % 3), Order: core.OrderAuto,
		}
		rng := rand.New(rand.NewSource(seed))
		a := matrix.New[float64](m, k)
		b := matrix.New[float64](k, n)
		a.Randomize(rng)
		b.Randomize(rng)
		c := matrix.New[float64](m, n)
		want := matrix.New[float64](m, n)
		matrix.NaiveGemm(want, a, b)
		if _, err := core.Gemm(c, a, b, cfg); err != nil {
			t.Fatalf("cfg %v dims %d,%d,%d: %v", cfg, m, k, n, err)
		}
		if !c.AlmostEqual(want, k, 1e-11) {
			t.Fatalf("cfg %v dims %d,%d,%d: diff %g", cfg, m, k, n, c.MaxAbsDiff(want))
		}
	})
}

func FuzzKFirstScheduleInvariants(f *testing.F) {
	f.Add(uint8(3), uint8(2), uint8(4), false)
	f.Add(uint8(1), uint8(1), uint8(1), true)
	f.Add(uint8(8), uint8(8), uint8(8), false)
	f.Fuzz(func(t *testing.T, mb, nb, kb uint8, outerM bool) {
		d := schedule.Dims{Mb: int(mb)%10 + 1, Nb: int(nb)%10 + 1, Kb: int(kb)%10 + 1}
		o := schedule.OuterN
		if outerM {
			o = schedule.OuterM
		}
		seq := schedule.KFirst(d, o)
		if !schedule.IsPermutation(d, seq) {
			t.Fatalf("%+v %v: not a permutation", d, o)
		}
		for i := 1; i < len(seq); i++ {
			a, b, c := schedule.Shared(seq[i-1], seq[i])
			if !a && !b && !c {
				t.Fatalf("%+v %v: adjacency broken at step %d", d, o, i)
			}
		}
		// IO optimality.
		surf := schedule.Surfaces{A: 10, B: 20, C: 40}
		cost := schedule.EvalIO(d, seq, surf)
		if cost.Total() != schedule.OptimalIO(d, o, surf) {
			t.Fatalf("%+v %v: K-first not IO-optimal", d, o)
		}
		if cost.PartialEvents != 0 {
			t.Fatalf("%+v %v: partial round-trips", d, o)
		}
	})
}

func FuzzPackRoundTrip(f *testing.F) {
	f.Add(uint8(13), uint8(9), int64(1))
	f.Add(uint8(1), uint8(1), int64(2))
	f.Fuzz(func(t *testing.T, rr, cc uint8, seed int64) {
		r, c := int(rr)%40+1, int(cc)%40+1
		rng := rand.New(rand.NewSource(seed))
		a := matrix.New[float64](r, c)
		a.Randomize(rng)
		// PackAT(transpose) must equal PackA(original): a strong round-trip
		// check of both layouts.
		cfg := core.Config{Cores: 1, MC: 8, KC: 8, Alpha: 1, MR: 8, NR: 8, Order: core.OrderAuto}
		want := matrix.New[float64](r, r)
		matrix.NaiveGemm(want, a, a.Transpose())
		got := matrix.New[float64](r, r)
		if _, err := core.GemmT(got, a, a, cfg, false, true); err != nil {
			t.Fatal(err)
		}
		if !got.AlmostEqual(want, c, 1e-11) {
			t.Fatalf("A·Aᵀ via transB differs: %g", got.MaxAbsDiff(want))
		}
	})
}
