// Scheduler walkthrough: Algorithm 2's K-first block schedule on a small
// computation space, showing the boustrophedon traversal, which IO surface
// each transition reuses (the Figure 3d execution order), and the external
// IO it saves over a restart-at-zero schedule.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"

	"repro/internal/schedule"
)

func main() {
	d := schedule.Dims{Mb: 3, Nb: 2, Kb: 3}
	surf := schedule.Surfaces{A: 64 * 16, B: 16 * 64, C: 64 * 64}

	fmt.Printf("computation space: %d x %d x %d blocks (M x N x K)\n", d.Mb, d.Nb, d.Kb)
	fmt.Println("K-first schedule with snake traversal (Algorithm 2):")
	fmt.Println()
	seq := schedule.KFirst(d, schedule.OuterN)
	for i, c := range seq {
		reuse := "(first block: fetch A and B)"
		if i > 0 {
			a, b, cc := schedule.Shared(seq[i-1], c)
			switch {
			case cc:
				reuse = "reuses partial C (K run continues)"
			case b:
				reuse = "reuses B surface (M step)"
			case a:
				reuse = "reuses A surface (N step)"
			default:
				reuse = "no reuse!"
			}
		}
		fmt.Printf("  step %2d: block (m=%d, n=%d, k=%d)  %s\n", i+1, c.M, c.N, c.K, reuse)
	}

	fmt.Println()
	kCost := schedule.EvalIO(d, seq, surf)
	nCost := schedule.EvalIO(d, schedule.Naive(d, schedule.OuterN), surf)
	opt := schedule.OptimalIO(d, schedule.OuterN, surf)
	fmt.Printf("external IO, K-first schedule: %.0f elements  %v\n", kCost.Total(), kCost)
	fmt.Printf("external IO, restart-at-zero:  %.0f elements  %v\n", nCost.Total(), nCost)
	fmt.Printf("snake traversal saves %.0f elements (%.1f%%); analytic optimum is %.0f\n",
		nCost.Total()-kCost.Total(),
		100*(nCost.Total()-kCost.Total())/nCost.Total(), opt)
	if kCost.Total() == opt && kCost.PartialEvents == 0 {
		fmt.Println("K-first achieves the optimum: every partial-C surface is")
		fmt.Println("completed in one residency — no partial results ever travel")
		fmt.Println("to external memory (Section 2.2)")
	}
}
