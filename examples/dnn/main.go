// DNN inference: the paper's motivating workload (Section 1 — "most
// computations in the forward pass of a convolutional neural network
// consist of one matrix multiplication per convolutional layer").
//
// Each convolution of a small VGG-style CNN is lowered to a GEMM via
// im2col (internal/convnet) and executed through one reusable CAKE
// executor — the drop-in-library usage the paper describes. The first
// layer is cross-checked against a direct convolution, and the run reports
// the per-layer GEMM shapes, block grids and packing share.
//
//	go run ./examples/dnn
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	cake "repro"
	"repro/internal/convnet"
	"repro/internal/core"
	"repro/internal/matrix"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const side = 64
	conv := func(in, out int) convnet.ConvSpec {
		return convnet.ConvSpec{InC: in, OutC: out, KH: 3, KW: 3, Stride: 1, Pad: 1}
	}
	specs := []convnet.ConvSpec{conv(3, 32), conv(32, 64), conv(64, 128), conv(128, 128)}
	pool := []bool{false, true, false, true}

	layers := make([]*convnet.Layer[float32], len(specs))
	for i, s := range specs {
		l, err := convnet.NewLayer[float32](fmt.Sprintf("conv%d", i+1), s, true, rng)
		if err != nil {
			log.Fatal(err)
		}
		layers[i] = l
	}

	// One executor for every layer's GEMM, planned for the largest shape.
	cfg, err := cake.Plan[float32](cake.Host(), 128, 128*9, side*side)
	if err != nil {
		log.Fatal(err)
	}
	exec, err := core.NewExecutor[float32](cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer exec.Close()

	input := convnet.NewTensor[float32](3, side, side)
	input.Randomize(rng)

	// Correctness: layer 1 via CAKE GEMM ≡ direct convolution.
	plain := *layers[0]
	plain.ReLU = false
	gemmOut, _, err := plain.Forward(input, exec)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := convnet.DirectConv(input, &plain)
	if err != nil {
		log.Fatal(err)
	}
	gm := matrix.FromSlice(1, len(gemmOut.Data), gemmOut.Data)
	rm := matrix.FromSlice(1, len(ref.Data), ref.Data)
	if !gm.AlmostEqual(rm, 27, 1e-4) {
		log.Fatalf("im2col GEMM disagrees with direct conv: %g", gm.MaxAbsDiff(rm))
	}
	fmt.Println("conv-as-GEMM verified against direct convolution")

	// Per-layer timing through the network.
	act := input
	var totalFlops, totalSec float64
	for i, l := range layers {
		start := time.Now()
		out, st, err := l.Forward(act, exec)
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		m := l.Spec.OutC
		k := l.Spec.InC * l.Spec.KH * l.Spec.KW
		n := out.H * out.W
		fl := 2 * float64(m) * float64(k) * float64(n)
		totalFlops += fl
		totalSec += el.Seconds()
		fmt.Printf("%-6s GEMM %4dx%4dx%4d  grid %v  pack %4.1f%%  %9v  %6.2f GFLOP/s\n",
			l.Name, m, k, n, st.Grid, 100*st.PackShare(), el.Round(time.Microsecond), fl/el.Seconds()/1e9)
		if pool[i] {
			out = convnet.MaxPool2x2(out)
		}
		act = out
	}
	fmt.Printf("forward pass: %.1f MFLOP in %.1f ms (%.2f GFLOP/s overall), final activation %dx%dx%d\n",
		totalFlops/1e6, totalSec*1e3, totalFlops/totalSec/1e9, act.C, act.H, act.W)
}
