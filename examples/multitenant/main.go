// Multi-tenant scheduling (paper Section 6.1): three GEMM jobs share one
// Intel i9 model. Because each CAKE tenant's DRAM bandwidth demand is
// constant and analytically known (Equation 4), cores, LLC and memory
// bandwidth can be statically partitioned with no schedule search — and
// each tenant runs at essentially its isolated throughput. The same
// partition applied to GOTO tenants collapses, because their bandwidth
// demands grow with core count and overrun their reservations.
//
//	go run ./examples/multitenant
//
// With -serve ADDR the example additionally publishes the partition and
// keeps running scaled real tenant GEMMs with tracing on, exposing the
// live observability surface (expvar, Prometheus metrics, pprof, Chrome
// traces, bandwidth timelines, conformance reports):
//
//	go run ./examples/multitenant -serve :8080
//	curl localhost:8080/debug/vars | jq .cake_tenants
//	curl localhost:8080/debug/conformance.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cbtheory"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/obs/conformance"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tenant"
)

func main() {
	serve := flag.String("serve", "", "address for the live debug server (e.g. :8080); keeps running scaled tenant GEMMs")
	flag.Parse()
	pl := platform.IntelI9()
	jobs := []tenant.Job{
		{Name: "training", M: 4096, K: 4096, N: 4096},
		{Name: "serving", M: 2048, K: 2048, N: 2048},
		{Name: "batch", M: 1024, K: 1024, N: 1024},
	}

	plan, err := tenant.PlanTenants(pl, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: static partition for %d tenants (no search)\n", pl.Name, len(jobs))
	fmt.Printf("%-10s %-6s %-10s %-12s %-24s\n", "tenant", "cores", "LLC MiB", "BW GB/s", "plan")
	for _, as := range plan.Assignments {
		fmt.Printf("%-10s %-6d %-10.1f %-12.2f %v\n",
			as.Job.Name, as.Cores, float64(as.LLCBytes)/(1<<20), as.DRAMBW/1e9, as.Config)
	}

	results, err := tenant.Simulate(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s %-14s %-14s %-10s\n", "tenant", "co-run GF/s", "isolated GF/s", "share")
	for _, r := range results {
		fmt.Printf("%-10s %-14.1f %-14.1f %.1f%%\n", r.Job.Name, r.GFLOPS, r.Isolated, 100*r.Share())
	}

	// Contrast: GOTO tenants under the same fair-share bandwidth partition.
	fmt.Printf("\nGOTO tenants with fair DRAM shares (%.1f GB/s each):\n", pl.DRAMBW/3/1e9)
	for i, as := range plan.Assignments {
		w := sim.GotoWorkload{P: as.Cores, MC: 176, KC: 176, NC: 8192, MR: 8, NR: 8, ElemBytes: 4}
		ops, err := sim.GotoOps(w, jobs[i].M, jobs[i].K, jobs[i].N)
		if err != nil {
			log.Fatal(err)
		}
		mcfg := sim.FromPlatform(pl, as.Cores)
		mcfg.ExtBW = pl.DRAMBW / 3 / pl.ClockHz
		met, err := sim.Run(mcfg, ops)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-14.1f (vs CAKE co-run %.1f)\n",
			jobs[i].Name, met.ThroughputGFLOPS(pl.ClockHz), results[i].GFLOPS)
	}
	fmt.Println("\nCAKE tenants fit their reservations because CB blocks pin their")
	fmt.Println("bandwidth demand; GOTO tenants' demand scales with cores and blows")
	fmt.Println("through any static share — the search-free multi-tenancy of §6.1.")

	if *serve != "" {
		if err := serveLive(pl, plan, *serve); err != nil {
			log.Fatal(err)
		}
	}
}

// serveLive publishes the partition and the executor metrics, runs one
// traced, conformance-checked GEMM per tenant, then drives all tenants
// CONCURRENTLY through one shared engine — each tenant stream lands in a
// different size tier, so the live counters (curl /debug/vars | jq
// .cake_engine) show tiered dispatch, executor leasing, and admission
// queueing under real contention — until interrupted.
func serveLive(pl *platform.Platform, plan tenant.Plan, addr string) error {
	obs.EnableMetrics()
	plan.Publish()

	srv, err := obs.Serve(addr)
	if err != nil {
		return err
	}
	fmt.Printf("\ndebug server on http://%s — /metrics, /debug/vars, /debug/pprof/,\n", srv.Addr())
	fmt.Println("/debug/trace.json, /debug/timeline.json, /debug/conformance.json")

	// One-shot per tenant: a traced executor GEMM scored against the CB
	// model, published as the tenant's conformance report.
	rates := cbtheory.Rates{ClockHz: pl.ClockHz, FlopsPerCycle: pl.FlopsPerCycle, ElemBytes: 4}
	rng := rand.New(rand.NewSource(1))
	for _, as := range plan.Assignments {
		// Scale the tenant's job to example size; the planned blocking
		// still applies (executors clip ragged edges).
		m, k, n := min(as.Job.M, 128), min(as.Job.K, 512), min(as.Job.N, 256)
		rec := obs.NewRecorder(as.Cores, 1<<14)
		e, err := core.NewExecutor[float32](as.Config, nil, core.WithTrace(rec))
		if err != nil {
			return err
		}
		a := matrix.New[float32](m, k)
		b := matrix.New[float32](k, n)
		c := matrix.New[float32](m, n)
		a.Randomize(rng)
		b.Randomize(rng)
		if _, err := e.Gemm(c, a, b); err != nil {
			e.Close()
			return err
		}
		e.Close()
		obs.RegisterProcess(as.Job.Name, rec)

		cfg := as.Config
		rep, err := conformance.Evaluate(conformance.Input{
			Executor: "cake/" + as.Job.Name, M: m, K: k, N: n, ElemBytes: 4,
			Cake:  &cfg,
			Rates: rates, AvailBWBps: as.DRAMBW, PrivateCacheBytes: pl.L2Bytes,
			Spans: rec.Spans(), Dropped: rec.Dropped(),
		})
		if err != nil {
			return err
		}
		rep.Publish()
	}

	// The live phase: every tenant is a concurrent client of ONE engine.
	// Training issues full-machine GEMMs, serving mid-size cache-resident
	// ones, batch a stream of tiny multiplies — three tiers in flight at
	// once, with per-tier hit and lease counters on /debug/vars.
	eng, err := engine.NewEngine(engine.Options{Platform: pl, Name: "multitenant", LargePanelSlots: 4})
	if err != nil {
		return err
	}
	defer eng.Close()
	// Sized against the i9 model's caches: training's §4.3 working set
	// (~27 MB) exceeds the 20 MB LLC → large tier; serving stays
	// cache-resident → small; batch fits L1 → tiny.
	sizes := map[string][3]int{
		"training": {1200, 1200, 1200},
		"serving":  {128, 512, 256},
		"batch":    {24, 24, 24},
	}
	errCh := make(chan error, len(plan.Assignments))
	for i, as := range plan.Assignments {
		dims, ok := sizes[as.Job.Name]
		if !ok {
			dims = [3]int{min(as.Job.M, 256), min(as.Job.K, 256), min(as.Job.N, 256)}
		}
		go func(seed int64, m, k, n int) {
			rng := rand.New(rand.NewSource(seed))
			a := matrix.New[float32](m, k)
			b := matrix.New[float32](k, n)
			c := matrix.New[float32](m, n)
			a.Randomize(rng)
			b.Randomize(rng)
			for {
				if _, err := engine.Gemm(eng, c, a, b); err != nil {
					errCh <- err
					return
				}
			}
		}(int64(i+2), dims[0], dims[1], dims[2])
	}
	fmt.Printf("driving %d tenant streams through engine %q — ^C to stop\n",
		len(plan.Assignments), "multitenant")
	return <-errCh
}
