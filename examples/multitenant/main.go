// Multi-tenant scheduling (paper Section 6.1): three GEMM jobs share one
// Intel i9 model. Because each CAKE tenant's DRAM bandwidth demand is
// constant and analytically known (Equation 4), cores, LLC and memory
// bandwidth can be statically partitioned with no schedule search — and
// each tenant runs at essentially its isolated throughput. The same
// partition applied to GOTO tenants collapses, because their bandwidth
// demands grow with core count and overrun their reservations.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/tenant"
)

func main() {
	pl := platform.IntelI9()
	jobs := []tenant.Job{
		{Name: "training", M: 4096, K: 4096, N: 4096},
		{Name: "serving", M: 2048, K: 2048, N: 2048},
		{Name: "batch", M: 1024, K: 1024, N: 1024},
	}

	plan, err := tenant.PlanTenants(pl, jobs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: static partition for %d tenants (no search)\n", pl.Name, len(jobs))
	fmt.Printf("%-10s %-6s %-10s %-12s %-24s\n", "tenant", "cores", "LLC MiB", "BW GB/s", "plan")
	for _, as := range plan.Assignments {
		fmt.Printf("%-10s %-6d %-10.1f %-12.2f %v\n",
			as.Job.Name, as.Cores, float64(as.LLCBytes)/(1<<20), as.DRAMBW/1e9, as.Config)
	}

	results, err := tenant.Simulate(plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-10s %-14s %-14s %-10s\n", "tenant", "co-run GF/s", "isolated GF/s", "share")
	for _, r := range results {
		fmt.Printf("%-10s %-14.1f %-14.1f %.1f%%\n", r.Job.Name, r.GFLOPS, r.Isolated, 100*r.Share())
	}

	// Contrast: GOTO tenants under the same fair-share bandwidth partition.
	fmt.Printf("\nGOTO tenants with fair DRAM shares (%.1f GB/s each):\n", pl.DRAMBW/3/1e9)
	for i, as := range plan.Assignments {
		w := sim.GotoWorkload{P: as.Cores, MC: 176, KC: 176, NC: 8192, MR: 8, NR: 8, ElemBytes: 4}
		ops, err := sim.GotoOps(w, jobs[i].M, jobs[i].K, jobs[i].N)
		if err != nil {
			log.Fatal(err)
		}
		mcfg := sim.FromPlatform(pl, as.Cores)
		mcfg.ExtBW = pl.DRAMBW / 3 / pl.ClockHz
		met, err := sim.Run(mcfg, ops)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-14.1f (vs CAKE co-run %.1f)\n",
			jobs[i].Name, met.ThroughputGFLOPS(pl.ClockHz), results[i].GFLOPS)
	}
	fmt.Println("\nCAKE tenants fit their reservations because CB blocks pin their")
	fmt.Println("bandwidth demand; GOTO tenants' demand scales with cores and blows")
	fmt.Println("through any static share — the search-free multi-tenancy of §6.1.")
}
