// Design-search comparison: the paper's Section 1 claim is that CAKE's
// analytically derived CB blocks remove the need for the "computationally
// intractable" grid search over tiling parameters. This example runs that
// grid search anyway — every (mc, α) design evaluated on the architecture
// simulator — and compares the winner against the closed-form plan.
//
//	go run ./examples/tuner
package main

import (
	"fmt"
	"log"

	"repro/internal/platform"
	"repro/internal/tuner"
)

func main() {
	const m, k, n = 4096, 4096, 4096
	for _, pl := range platform.All() {
		res, err := tuner.Search(pl, pl.Cores, m, k, n, tuner.Options{MCStep: 16, MCMax: 320})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s — %d³ GEMM, %d cores, %d designs searched\n",
			pl.Name, m, pl.Cores, len(res.Evaluated))
		fmt.Printf("  search best : mc=%-4d α=%-3g -> %7.1f GFLOP/s, %5.2f GB/s DRAM\n",
			res.Best.MC, res.Best.Alpha, res.Best.GFLOPS, res.Best.DRAMGB)
		fmt.Printf("  analytic    : mc=%-4d α=%-3g -> %7.1f GFLOP/s, %5.2f GB/s DRAM\n",
			res.Analytic.MC, res.Analytic.Alpha, res.Analytic.GFLOPS, res.Analytic.DRAMGB)
		fmt.Printf("  analytic plan reaches %.1f%% of the searched optimum\n\n",
			100*res.AnalyticShare())
	}
	fmt.Println("CB theory picks the block shape in closed form (Sections 3-4);")
	fmt.Println("the search only confirms it — the paper's 'no design search' claim.")
}
