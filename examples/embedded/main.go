// Embedded scenario: the Figure 11 story on the bandwidth-starved ARM v8
// Cortex A53 (2 GB/s DRAM, no L3). The example sweeps core counts on the
// architecture simulator and shows CAKE holding DRAM bandwidth constant
// while scaling throughput, as the vendor-library proxy (GOTO, what ARMPL
// implements) saturates the memory bus.
//
//	go run ./examples/embedded
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/platform"
)

func main() {
	pl := platform.ARMCortexA53()
	const size = 3000 // the paper's ARM problem size (fits its 1 GB DRAM)

	fmt.Printf("%s: %d³ single-precision GEMM (simulated)\n", pl.Name, size)
	fmt.Printf("%-6s  %-22s  %-22s\n", "", "ARMPL proxy (GOTO)", "CAKE")
	fmt.Printf("%-6s  %-10s %-10s  %-10s %-10s\n",
		"cores", "GFLOP/s", "DRAM GB/s", "GFLOP/s", "DRAM GB/s")

	var cakeLast, gotoLast float64
	for p := 1; p <= pl.Cores; p++ {
		cm, _, err := experiments.SimCake(pl, p, size, size, size)
		if err != nil {
			log.Fatal(err)
		}
		gm, _, err := experiments.SimGoto(pl, p, size, size, size)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d  %-10.2f %-10.2f  %-10.2f %-10.2f\n",
			p,
			gm.ThroughputGFLOPS(pl.ClockHz), gm.AvgDRAMBW(pl.ClockHz)/1e9,
			cm.ThroughputGFLOPS(pl.ClockHz), cm.AvgDRAMBW(pl.ClockHz)/1e9)
		cakeLast = cm.ThroughputGFLOPS(pl.ClockHz)
		gotoLast = gm.ThroughputGFLOPS(pl.ClockHz)
	}

	fmt.Printf("\nat %d cores CAKE delivers %.1fx the ARMPL-proxy throughput\n",
		pl.Cores, cakeLast/gotoLast)
	fmt.Println("(the paper's Figure 11: CAKE adjusts the CB block so the 2 GB/s")
	fmt.Println(" DRAM link never becomes the bottleneck, while GOTO's partial-C")
	fmt.Println(" round-trips stall the in-order cores)")
}
