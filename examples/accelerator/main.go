// Accelerator scenario: CAKE beyond CPUs (paper Section 6.1). This example
// runs the Section 2–3 abstract machine — a processing grid of cores with
// stationary A tiles, broadcast B and inter-core accumulation, the
// architecture of the paper's Figures 1–4 — on real multiplications, and
// shows the measured quantities landing exactly on the closed forms:
// Equation 1 (local memory), Equation 2 (constant external bandwidth) and
// Equation 3 (internal bandwidth growing linearly with cores).
//
//	go run ./examples/accelerator
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cbtheory"
	"repro/internal/gridsim"
	"repro/internal/matrix"
)

func main() {
	const k = 4
	fmt.Printf("grid machine, k=%d, α=1 — scaling cores %d→%d→%d (p = 1, 2, 4)\n",
		k, gridsim.Config{P: 1, K: k}.Cores(), gridsim.Config{P: 2, K: k}.Cores(), gridsim.Config{P: 4, K: k}.Cores())
	fmt.Printf("%-4s %-7s %-12s %-12s %-12s %-12s %-10s\n",
		"p", "cores", "ext BW", "Eq.2", "int BW", "Eq.3", "localMem=Eq.1")

	rng := rand.New(rand.NewSource(1))
	for _, p := range []int{1, 2, 4} {
		cfg := gridsim.Config{P: p, K: k, Alpha: 1}
		bm, bk, bn := cfg.BlockDims()
		// One exact block so the closed forms hold with equality.
		a := matrix.New[float64](bm, bk)
		b := matrix.New[float64](bk, bn)
		a.Randomize(rng)
		b.Randomize(rng)

		got, met, err := gridsim.Multiply(cfg, a, b)
		if err != nil {
			log.Fatal(err)
		}
		want := matrix.New[float64](bm, bn)
		matrix.NaiveGemm(want, a, b)
		if !got.AlmostEqual(want, bk, 1e-12) {
			log.Fatal("grid machine computed the wrong product")
		}

		r := (cfg.Alpha + 1) / cfg.Alpha
		fmt.Printf("%-4d %-7d %-12.2f %-12.2f %-12.2f %-12.2f %v = %v\n",
			p, cfg.Cores(),
			met.ExternalBW(), cbtheory.MinExternalBWTiles(cfg.Alpha, float64(k)),
			met.InternalBW(), cbtheory.InternalBWTiles(r, float64(p), float64(k)),
			met.PeakLocalMem, int64(cbtheory.InternalMemTiles(cfg.Alpha, float64(p), float64(k))))
	}

	fmt.Println()
	fmt.Println("external bandwidth is identical at every p (the constant-bandwidth")
	fmt.Println("property), internal bandwidth and local memory grow with p — the")
	fmt.Println("trade a CB-partitioned accelerator makes (Sections 3.1-3.3), and the")
	fmt.Println("results are verified against the naive reference on every run.")
}
