// Quickstart: multiply two matrices with CAKE and verify the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	cake "repro"
)

func main() {
	const m, k, n = 768, 512, 640
	rng := rand.New(rand.NewSource(42))

	a := cake.NewMatrix[float32](m, k)
	b := cake.NewMatrix[float32](k, n)
	a.Randomize(rng)
	b.Randomize(rng)
	c := cake.NewMatrix[float32](m, n)

	// One-shot API: plans CB blocks for this host and runs C += A×B.
	start := time.Now()
	if err := cake.Gemm(c, a, b); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	// Verify against the naive reference (Algorithm 1 in the paper).
	want := cake.NewMatrix[float32](m, n)
	cake.NaiveGemm(want, a, b)
	if !c.AlmostEqual(want, k, 1e-5) {
		log.Fatalf("mismatch: max diff %g", c.MaxAbsDiff(want))
	}

	flops := 2 * float64(m) * float64(n) * float64(k)
	fmt.Printf("C[%dx%d] += A[%dx%d] x B[%dx%d]\n", m, n, m, k, k, n)
	fmt.Printf("cake: %v (%.2f GFLOP/s), verified\n", elapsed, flops/elapsed.Seconds()/1e9)

	// Explicit control: plan for a Table 2 platform model and inspect the
	// CB block the theory selects.
	for _, pl := range cake.Platforms() {
		cfg, err := cake.Plan[float32](pl, 3000, 3000, 3000)
		if err != nil {
			log.Fatal(err)
		}
		shape := cfg.Shape()
		fmt.Printf("%-20s plan %v  block %v  AI %.0f MACs/elem\n",
			pl.Name, cfg, shape, shape.AI())
	}
}
