package cake

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/matrix"
)

// BLAS-style entry points — the "drop-in replacement for MM calls used by
// existing frameworks" of the paper's contribution list. Operands are raw
// row-major slices with explicit leading dimensions (the C-order gemm
// convention); the semantics are the full BLAS update
//
//	C = α · op(A) × op(B) + β · C
//
// with op transposing its operand when the corresponding flag is set.

// SGemm is the single-precision drop-in GEMM.
func SGemm(transA, transB bool, m, n, k int, alpha float32, a []float32, lda int,
	b []float32, ldb int, beta float32, c []float32, ldc int) error {
	return blasGemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// DGemm is the double-precision drop-in GEMM.
func DGemm(transA, transB bool, m, n, k int, alpha float64, a []float64, lda int,
	b []float64, ldb int, beta float64, c []float64, ldc int) error {
	return blasGemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

func blasGemm[T Scalar](transA, transB bool, m, n, k int, alpha T, a []T, lda int,
	b []T, ldb int, beta T, c []T, ldc int) error {
	if m < 1 || n < 1 || k < 1 {
		return fmt.Errorf("cake: gemm dims m=%d n=%d k=%d", m, n, k)
	}
	am, ak := m, k
	if transA {
		am, ak = k, m
	}
	bk, bn := k, n
	if transB {
		bk, bn = n, k
	}
	var ma, mb, mc *Matrix[T]
	if err := capture(func() {
		ma = matrix.FromStrided(am, ak, lda, a)
		mb = matrix.FromStrided(bk, bn, ldb, b)
		mc = matrix.FromStrided(m, n, ldc, c)
	}); err != nil {
		return fmt.Errorf("cake: gemm operands: %v", err)
	}
	// Route through the process-wide engine: tiny problems skip the CB
	// machinery, and concurrent BLAS callers never share an executor.
	e, err := DefaultEngine()
	if err != nil {
		return err
	}
	_, err = engine.GemmScaled(e, mc, ma, mb, transA, transB, alpha, beta)
	return err
}

// capture converts a panic from operand validation into an error, giving
// the BLAS surface the error-returning contract callers expect.
func capture(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	fn()
	return nil
}
