package cake

// The benchmark harness: one benchmark per paper table/figure (regenerating
// its data through the simulator and reporting the headline numbers as
// benchmark metrics), real-machine GEMM benchmarks for the implementation
// itself, and ablation benchmarks for the design choices listed in
// DESIGN.md §4. Run with:
//
//	go test -bench=. -benchmem
import (
	"math/rand"
	"testing"

	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gotoalg"
	"repro/internal/gridsim"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/memtrace"
	"repro/internal/packing"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/tenant"
	"repro/internal/tuner"
)

// ---------------------------------------------------------------------------
// Per-table / per-figure benchmarks (simulator-backed, scaled sizes; the
// full paper sizes run via `go run ./cmd/cake-bench <fig>`).
// ---------------------------------------------------------------------------

func BenchmarkTable2Platforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table2()) != 4 {
			b.Fatal("table rows")
		}
	}
}

func BenchmarkFig4ArithmeticIntensity(b *testing.B) {
	var last float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4()
		last = r.Series[2].Y[len(r.Series[2].Y)-1]
	}
	b.ReportMetric(last, "AI@p16")
}

func BenchmarkFig7aStallsIntel(b *testing.B) {
	pl := platform.IntelI9()
	var bars *experiments.Bars
	var err error
	for i := 0; i < b.N; i++ {
		bars, err = experiments.Fig7a(pl, 4000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bars.Values[1][3]/max(bars.Values[0][3], 1), "mkl/cake-dram-stall")
}

func BenchmarkFig7bAccessesARM(b *testing.B) {
	pl := platform.ARMCortexA53()
	var bars *experiments.Bars
	var err error
	for i := 0; i < b.N; i++ {
		bars, err = experiments.Fig7b(pl, 1500)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bars.Values[1][2]/max(bars.Values[0][2], 1), "armpl/cake-dram-req")
}

func BenchmarkFig8Contours(b *testing.B) {
	pl := platform.IntelI9()
	var grids []*experiments.Grid
	var err error
	for i := 0; i < b.N; i++ {
		grids, err = experiments.Fig8(pl, 4000, 1000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(grids[0].Coverage(1.0), "frac-cake-wins-square")
	b.ReportMetric(grids[3].Coverage(1.0), "frac-cake-wins-8n")
}

func benchFig9(b *testing.B, pl *platform.Platform) {
	var r *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Fig9(pl, []int{1000, 2000})
		if err != nil {
			b.Fatal(err)
		}
	}
	cake := r.Series[1]
	b.ReportMetric(cake.Y[len(cake.Y)-1], "cake-speedup@maxcores")
}

func BenchmarkFig9aSpeedupIntel(b *testing.B) { benchFig9(b, platform.IntelI9()) }
func BenchmarkFig9bSpeedupARM(b *testing.B)   { benchFig9(b, platform.ARMCortexA53()) }

func benchTrio(b *testing.B, pl *platform.Platform, id string, size int, pick func(bw, tp, in *experiments.Result) (float64, string)) {
	var v float64
	var name string
	for i := 0; i < b.N; i++ {
		bw, tp, in, err := experiments.FigTrio(pl, id, experiments.TrioSizes{Size: size, ExtrapTo: 2 * pl.Cores})
		if err != nil {
			b.Fatal(err)
		}
		v, name = pick(bw, tp, in)
	}
	b.ReportMetric(v, name)
}

func lastY(s experiments.Series) float64 { return s.Y[len(s.Y)-1] }

func BenchmarkFig10aDRAMBWIntel(b *testing.B) {
	benchTrio(b, platform.IntelI9(), "fig10", 2304, func(bw, _, _ *experiments.Result) (float64, string) {
		return lastY(bw.Series[0]) / lastY(bw.Series[1]), "mkl/cake-dram-bw"
	})
}

func BenchmarkFig10bThroughputIntel(b *testing.B) {
	benchTrio(b, platform.IntelI9(), "fig10", 2304, func(_, tp, _ *experiments.Result) (float64, string) {
		return lastY(tp.Series[3]), "cake-gflops@10c"
	})
}

func BenchmarkFig10cInternalBWIntel(b *testing.B) {
	benchTrio(b, platform.IntelI9(), "fig10", 2304, func(_, _, in *experiments.Result) (float64, string) {
		return lastY(in.Series[0]), "internal-gbps@10c"
	})
}

func BenchmarkFig11aDRAMBWARM(b *testing.B) {
	benchTrio(b, platform.ARMCortexA53(), "fig11", 1500, func(bw, _, _ *experiments.Result) (float64, string) {
		return lastY(bw.Series[1]), "cake-dram-gbps@4c"
	})
}

func BenchmarkFig11bThroughputARM(b *testing.B) {
	benchTrio(b, platform.ARMCortexA53(), "fig11", 1500, func(_, tp, _ *experiments.Result) (float64, string) {
		return lastY(tp.Series[3]) / lastY(tp.Series[2]), "cake/armpl-gflops"
	})
}

func BenchmarkFig11cInternalBWARM(b *testing.B) {
	benchTrio(b, platform.ARMCortexA53(), "fig11", 1500, func(_, _, in *experiments.Result) (float64, string) {
		return lastY(in.Series[0]), "internal-gbps@4c"
	})
}

func BenchmarkFig12aDRAMBWAMD(b *testing.B) {
	benchTrio(b, platform.AMDRyzen9(), "fig12", 2304, func(bw, _, _ *experiments.Result) (float64, string) {
		return lastY(bw.Series[0]) / lastY(bw.Series[1]), "openblas/cake-dram-bw"
	})
}

func BenchmarkFig12bThroughputAMD(b *testing.B) {
	benchTrio(b, platform.AMDRyzen9(), "fig12", 2304, func(_, tp, _ *experiments.Result) (float64, string) {
		return lastY(tp.Series[3]), "cake-gflops@16c"
	})
}

func BenchmarkFig12cInternalBWAMD(b *testing.B) {
	benchTrio(b, platform.AMDRyzen9(), "fig12", 2304, func(_, _, in *experiments.Result) (float64, string) {
		return lastY(in.Series[0]), "internal-gbps@16c"
	})
}

// ---------------------------------------------------------------------------
// Real-machine GEMM benchmarks: the implementation itself.
// ---------------------------------------------------------------------------

func benchRealGemm(b *testing.B, size int, run func(c, a, bb *Matrix[float32])) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix[float32](size, size)
	bb := NewMatrix[float32](size, size)
	c := NewMatrix[float32](size, size)
	a.Randomize(rng)
	bb.Randomize(rng)
	flops := matrix.GemmFlops(size, size, size)
	run(c, a, bb) // warm up packing buffers so steady-state is measured
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(c, a, bb)
	}
	b.StopTimer()
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func benchCake(b *testing.B, size int) {
	cfg, err := Plan[float32](Host(), size, size, size)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewExecutor[float32](cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	benchRealGemm(b, size, func(c, a, bb *Matrix[float32]) {
		if _, err := e.Gemm(c, a, bb); err != nil {
			b.Fatal(err)
		}
	})
}

func benchGoto(b *testing.B, size int) {
	cfg, err := PlanGoto[float32](Host())
	if err != nil {
		b.Fatal(err)
	}
	e, err := gotoalg.NewExecutor[float32](cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	benchRealGemm(b, size, func(c, a, bb *Matrix[float32]) {
		if _, err := e.Gemm(c, a, bb); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkRealGemmCake256(b *testing.B)  { benchCake(b, 256) }
func BenchmarkRealGemmCake512(b *testing.B)  { benchCake(b, 512) }
func BenchmarkRealGemmCake1024(b *testing.B) { benchCake(b, 1024) }
func BenchmarkRealGemmGoto256(b *testing.B)  { benchGoto(b, 256) }
func BenchmarkRealGemmGoto512(b *testing.B)  { benchGoto(b, 512) }
func BenchmarkRealGemmGoto1024(b *testing.B) { benchGoto(b, 1024) }

func BenchmarkRealGemmNaive256(b *testing.B) {
	benchRealGemm(b, 256, func(c, a, bb *Matrix[float32]) { NaiveGemm(c, a, bb) })
}

func BenchmarkRealGemmSkewed(b *testing.B) {
	// The Figure 8 regime on the real machine: a skewed M≫N multiplication.
	const m, k, n = 2048, 256, 256
	cfg, err := Plan[float32](Host(), m, k, n)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewExecutor[float32](cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	rng := rand.New(rand.NewSource(2))
	a := NewMatrix[float32](m, k)
	bb := NewMatrix[float32](k, n)
	c := NewMatrix[float32](m, n)
	a.Randomize(rng)
	bb.Randomize(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Gemm(c, a, bb); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(matrix.GemmFlops(m, n, k)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// ---------------------------------------------------------------------------
// Microkernel benchmarks.
// ---------------------------------------------------------------------------

func benchKernel(b *testing.B, k kernel.Kernel[float32], kc int) {
	a := make([]float32, k.MR*kc)
	bb := make([]float32, kc*k.NR)
	c := make([]float32, k.MR*k.NR)
	for i := range a {
		a[i] = float32(i)
	}
	for i := range bb {
		bb[i] = float32(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.F(kc, a, bb, c, k.NR)
	}
	b.StopTimer()
	flops := 2 * float64(k.MR*k.NR*kc)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func BenchmarkKernel8x8(b *testing.B)    { benchKernel(b, kernel.Best[float32](8, 8), 256) }
func BenchmarkKernel6x8(b *testing.B)    { benchKernel(b, kernel.Best[float32](6, 8), 256) }
func BenchmarkKernel4x8(b *testing.B)    { benchKernel(b, kernel.Best[float32](4, 8), 256) }
func BenchmarkKernel4x4(b *testing.B)    { benchKernel(b, kernel.Best[float32](4, 4), 256) }
func BenchmarkKernelGen8x8(b *testing.B) { benchKernel(b, kernel.Generic[float32](8, 8), 256) }

// ---------------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md §4).
// ---------------------------------------------------------------------------

// Ablation 1: Algorithm 2's snake traversal vs restart-at-zero loops. The
// O(Mb·Nb + Nb) missed reuses live at reduction-run boundaries, so the
// effect is measured on a shallow-K grid and on input traffic (C writeback
// volume is identical for both schedules).
func BenchmarkAblationSnakeVsRestart(b *testing.B) {
	d := schedule.Dims{Mb: 16, Nb: 16, Kb: 2}
	s := schedule.Surfaces{A: 1760 * 176, B: 176 * 1760, C: 1760 * 1760}
	var snake, restart schedule.Cost
	for i := 0; i < b.N; i++ {
		snake = schedule.EvalIO(d, schedule.KFirst(d, schedule.OuterN), s)
		restart = schedule.EvalIO(d, schedule.Naive(d, schedule.OuterN), s)
	}
	inputs := func(c schedule.Cost) float64 { return c.AFetch + c.BFetch }
	b.ReportMetric(inputs(restart)/inputs(snake), "restart/snake-input-io")
	b.ReportMetric(float64(snake.AReuses+snake.BReuses), "reuses-snake")
	b.ReportMetric(float64(restart.AReuses+restart.BReuses), "reuses-restart")
}

// Ablation 2: α shaping on a bandwidth-starved platform.
func BenchmarkAblationAlpha(b *testing.B) {
	pl := platform.ARMCortexA53()
	pl.DRAMBW = 200e6 // starve DRAM so α matters
	var flat, tall sim.Metrics
	for i := 0; i < b.N; i++ {
		// Raising α costs local memory (Eq. 5), so the taller block must
		// shrink mc to stay LRU-safe in the 512 KiB LLC — exactly the trade
		// the planner makes.
		run := func(alpha float64, mc int) sim.Metrics {
			w := sim.CakeWorkload{P: 4, MC: mc, KC: mc, Alpha: alpha, MR: 8, NR: 8, ElemBytes: 4}
			ops, err := sim.CakeOps(w, 1500, 1500, 1500)
			if err != nil {
				b.Fatal(err)
			}
			m, err := sim.Run(sim.FromPlatform(pl, 4), ops)
			if err != nil {
				b.Fatal(err)
			}
			return m
		}
		flat = run(1, 40)
		tall = run(4, 32)
	}
	b.ReportMetric(tall.ThroughputGFLOPS(pl.ClockHz)/flat.ThroughputGFLOPS(pl.ClockHz), "alpha4/alpha1-gflops")
	b.ReportMetric(flat.AvgDRAMBW(pl.ClockHz)/tall.AvgDRAMBW(pl.ClockHz), "alpha1/alpha4-dram-bw")
}

// Ablation 3: partial-C residency (CAKE) vs streaming partials to DRAM —
// the Section 4.4 difference, isolated on otherwise identical blocks.
func BenchmarkAblationPartialCResidency(b *testing.B) {
	pl := platform.ARMCortexA53()
	w := sim.CakeWorkload{P: 4, MC: 40, KC: 40, Alpha: 1, MR: 8, NR: 8, ElemBytes: 4}
	var resident, streaming sim.Metrics
	for i := 0; i < b.N; i++ {
		ops, err := sim.CakeOps(w, 1500, 1500, 1500)
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.FromPlatform(pl, 4)
		resident, err = sim.Run(cfg, ops)
		if err != nil {
			b.Fatal(err)
		}
		// Same blocks, but every block round-trips its C surface to DRAM
		// as demand traffic (what GOTO does).
		stream := make([]sim.BlockOp, len(ops))
		for j, op := range ops {
			cBytes := 4 * op.MACs / int64(w.KC) // ≈ m·n elements per block
			op.WriteC = 0
			op.DemandWrite = cBytes
			op.DemandRead = cBytes
			stream[j] = op
		}
		streaming, err = sim.Run(cfg, stream)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(streaming.Cycles)/float64(resident.Cycles), "streaming/resident-cycles")
	b.ReportMetric(streaming.AvgDRAMBW(pl.ClockHz)/resident.AvgDRAMBW(pl.ClockHz), "streaming/resident-bw")
}

// Ablation 4: LRU-safe sizing (C + 2(A+B) ≤ S) vs filling the cache
// exactly with one block's surfaces — eviction counts through the exact
// LRU model show why the guard factor matters.
func BenchmarkAblationLRUSizing(b *testing.B) {
	const size = 1024
	runTrace := func(mc int) int64 {
		llc := int64(512 << 10)
		h := cachesim.NewHierarchy[memtrace.Key]([]string{"LLC"}, []int64{llc})
		res, err := memtrace.Run(func(e memtrace.Emit) error {
			return memtrace.Cake(size, size, size, memtrace.CakeParams{P: 4, MC: mc, Alpha: 1}, 8, 4, e)
		}, h)
		if err != nil {
			b.Fatal(err)
		}
		return res.BytesMoved
	}
	var safe, oversized int64
	for i := 0; i < b.N; i++ {
		safe = runTrace(64)      // passes C + 2(A+B) ≤ S
		oversized = runTrace(88) // A+B+C ≈ S: LRU thrashes the resident C
	}
	b.ReportMetric(float64(oversized)/float64(safe), "oversized/safe-dram-bytes")
}

// Ablation 7: the analytic CB plan vs an exhaustive (mc, α) grid search on
// the simulator — quantifying "obviating the need for extensive design
// search" (Section 1). The share metric is the fraction of the searched
// optimum's throughput the analytic plan achieves.
func BenchmarkAblationAnalyticVsSearch(b *testing.B) {
	pl := platform.IntelI9()
	var share float64
	var evaluated int
	for i := 0; i < b.N; i++ {
		res, err := tuner.Search(pl, pl.Cores, 2304, 2304, 2304, tuner.Options{MCStep: 16, MCMax: 320})
		if err != nil {
			b.Fatal(err)
		}
		share = res.AnalyticShare()
		evaluated = len(res.Evaluated)
	}
	b.ReportMetric(share, "analytic/search-gflops")
	b.ReportMetric(float64(evaluated), "designs-searched")
}

// Ablation 5: compute dimension (N vs M vs K) on the real machine.
func BenchmarkAblationComputeDim(b *testing.B) {
	for _, dim := range []core.ComputeDim{core.DimN, core.DimM, core.DimK} {
		b.Run(dim.String(), func(b *testing.B) {
			cfg := core.Config{Cores: Host().Cores, MC: 64, KC: 64, Alpha: 1, MR: 8, NR: 8, Dim: dim, Order: core.OrderAuto}
			e, err := core.NewExecutor[float32](cfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			rng := rand.New(rand.NewSource(3))
			a := matrix.New[float32](512, 512)
			bb := matrix.New[float32](512, 512)
			c := matrix.New[float32](512, 512)
			a.Randomize(rng)
			bb.Randomize(rng)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Gemm(c, a, bb); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 6: register-tile shape sweep through the full macro kernel.
func BenchmarkAblationKernel(b *testing.B) {
	shapes := [][2]int{{4, 4}, {4, 8}, {8, 4}, {6, 8}, {8, 8}, {16, 16}}
	for _, s := range shapes {
		b.Run(kernel.Best[float32](s[0], s[1]).Name, func(b *testing.B) {
			const m, kc, n = 192, 192, 192
			k := kernel.Best[float32](s[0], s[1])
			rng := rand.New(rand.NewSource(4))
			a := matrix.New[float32](m, kc)
			bb := matrix.New[float32](kc, n)
			a.Randomize(rng)
			bb.Randomize(rng)
			ap := packing.PackA(make([]float32, packing.PackedASize(m, kc, k.MR)), a, k.MR, 1)
			bp := packing.PackB(make([]float32, packing.PackedBSize(kc, n, k.NR)), bb, k.NR)
			c := matrix.New[float32](m, n)
			scratch := kernel.NewScratch[float32](k.MR, k.NR)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				packing.Macro(k, kc, ap, bp, c, scratch)
			}
			b.StopTimer()
			b.ReportMetric(matrix.GemmFlops(m, n, kc)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
		})
	}
}

// ---------------------------------------------------------------------------
// Grid-machine benchmark: Figure 4's abstract machine, executing for real.
// ---------------------------------------------------------------------------

// BenchmarkFig4GridMachine runs the Section 3 processing-grid simulator on
// real multiplications and reports the metered external bandwidth, which
// must stay constant while the grid (and throughput) scales — Figure 4 on
// an executing machine rather than in closed form.
func BenchmarkFig4GridMachine(b *testing.B) {
	var bws [3]float64
	for i := 0; i < b.N; i++ {
		for gi, p := range []int{1, 2, 4} {
			cfg := gridsim.Config{P: p, K: 4, Alpha: 1}
			bm, bk, bn := cfg.BlockDims()
			a := matrix.New[float64](bm, bk)
			bb := matrix.New[float64](bk, bn)
			a.Fill(1)
			bb.Fill(1)
			_, met, err := gridsim.Multiply(cfg, a, bb)
			if err != nil {
				b.Fatal(err)
			}
			bws[gi] = met.ExternalBW()
		}
	}
	b.ReportMetric(bws[0], "bw-tiles/unit@p1")
	b.ReportMetric(bws[2], "bw-tiles/unit@p4")
}

// BenchmarkPackingOverhead measures the Section 5.2.1 packing-share
// observation on the real machine: negligible for large square shapes,
// significant for skewed ones.
func BenchmarkPackingOverhead(b *testing.B) {
	var rows []experiments.PackShareRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.PackingOverhead(Host().Cores, experiments.DefaultPackShapes())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].PackShare, "pack-share-square")
	b.ReportMetric(rows[1].PackShare, "pack-share-thinK")
}

// BenchmarkMultiTenant measures the Section 6.1 extension: the worst
// tenant's co-run/isolated throughput share under CB-provisioned static
// partitioning of the Intel model.
func BenchmarkMultiTenant(b *testing.B) {
	pl := platform.IntelI9()
	jobs := []tenant.Job{
		{Name: "training", M: 4096, K: 4096, N: 4096},
		{Name: "serving", M: 2048, K: 2048, N: 2048},
		{Name: "batch", M: 1024, K: 1024, N: 1024},
	}
	worst := 1.0
	for i := 0; i < b.N; i++ {
		plan, err := tenant.PlanTenants(pl, jobs)
		if err != nil {
			b.Fatal(err)
		}
		results, err := tenant.Simulate(plan)
		if err != nil {
			b.Fatal(err)
		}
		worst = 1.0
		for _, r := range results {
			if s := r.Share(); s < worst {
				worst = s
			}
		}
	}
	b.ReportMetric(worst, "worst-tenant-share")
}
