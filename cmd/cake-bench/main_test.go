package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunTable2AndFig4(t *testing.T) {
	var buf bytes.Buffer
	for _, target := range []string{"table2", "fig4"} {
		if err := run(target, true, "", &buf); err != nil {
			t.Fatalf("%s: %v", target, err)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Intel i9-10900K") || !strings.Contains(out, "fig4") {
		t.Fatalf("output missing content: %q", out)
	}
}

func TestRunGemmWritesJSON(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run("gemm", true, dir, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sync", "pipelined", "pipelined+cache", "skewed-small-M", "vs sync"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gemm table missing %q in %q", want, out)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_gemm.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"gflops"`, `"pack_share"`, `"reused_a_elems"`, `"speedup_vs_sync"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("BENCH_gemm.json missing %s", want)
		}
	}
}

func TestRunServeWritesJSON(t *testing.T) {
	dir := t.TempDir()
	oldDur, oldClients := serveDur, serveClients
	serveDur, serveClients = 300*time.Millisecond, 4
	defer func() { serveDur, serveClients = oldDur, oldClients }()
	var buf bytes.Buffer
	if err := run("serve", true, dir, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"engine", "serialized", "tiny", "GEMMs/s", "dispatch A/B"} {
		if !strings.Contains(out, want) {
			t.Fatalf("serve table missing %q in %q", want, out)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_serve.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"speedup"`, `"gemms_per_sec"`, `"tiny_direct_p50_micros"`, `"client_mix"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("BENCH_serve.json missing %s", want)
		}
	}
}

func TestRunUnknownTarget(t *testing.T) {
	if err := run("fig99", true, "", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestRunTrioQuickWithCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run("fig11", true, dir, &buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig11a.csv", "fig11b.csv", "fig11c.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
		if !strings.Contains(string(data), "cores") {
			t.Fatalf("%s lacks header", f)
		}
	}
	if !strings.Contains(buf.String(), "ARM v8 Cortex A53") {
		t.Fatal("trio output missing platform")
	}
}

func TestRunFig8Quick(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run("fig8", true, dir, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ratio >= 1.00x") {
		t.Fatal("fig8 coverage summary missing")
	}
	if _, err := os.Stat(filepath.Join(dir, "fig8d.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestShortName(t *testing.T) {
	var buf bytes.Buffer
	if err := run("fig9", true, "", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Speedup") {
		t.Fatal("fig9 output missing")
	}
}

func writeGateArtifacts(t *testing.T, dir, gemm, timeline string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "BENCH_gemm.json"), []byte(gemm), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_bwtimeline.json"), []byte(timeline), 0o644); err != nil {
		t.Fatal(err)
	}
}

const gateGemmJSON = `{"cores":2,"rows":[
  {"shape":"square-480","mode":"sync","gflops":10},
  {"shape":"square-480","mode":"pipelined","gflops":12}
]}`

const gateTimelineJSON = `{"m":32,"k":512,"n":256,"cores":2,
  "cake":{"executor":"cake","gflops":6,"cov":0.4},
  "goto":{"executor":"goto","gflops":5,"cov":1.5}}`

func TestRunCheckCandidateSelfComparePasses(t *testing.T) {
	dir := t.TempDir()
	writeGateArtifacts(t, dir, gateGemmJSON, gateTimelineJSON)
	var buf bytes.Buffer
	if err := runCheck([]string{"-baseline", dir, "-candidate", dir}, &buf); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "benchmark gate: OK") {
		t.Fatalf("missing OK verdict:\n%s", buf.String())
	}
}

func TestRunCheckCandidateRegressionFails(t *testing.T) {
	baseDir, candDir := t.TempDir(), t.TempDir()
	writeGateArtifacts(t, baseDir, gateGemmJSON, gateTimelineJSON)
	regressed := strings.Replace(gateGemmJSON, `"mode":"pipelined","gflops":12`, `"mode":"pipelined","gflops":6`, 1)
	writeGateArtifacts(t, candDir, regressed, gateTimelineJSON)
	var buf bytes.Buffer
	err := runCheck([]string{"-baseline", baseDir, "-candidate", candDir}, &buf)
	if err == nil {
		t.Fatalf("halved throughput passed:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "regression") || !strings.Contains(buf.String(), "REGRESSION") {
		t.Fatalf("err = %v, output:\n%s", err, buf.String())
	}
}

func TestRunCheckMissingBaselineErrors(t *testing.T) {
	if err := runCheck([]string{"-baseline", t.TempDir(), "-candidate", t.TempDir()}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty baseline dir accepted")
	}
}

func TestRunCheckBadFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := runCheck([]string{"-no-such-flag"}, &buf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
