package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable2AndFig4(t *testing.T) {
	var buf bytes.Buffer
	for _, target := range []string{"table2", "fig4"} {
		if err := run(target, true, "", &buf); err != nil {
			t.Fatalf("%s: %v", target, err)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Intel i9-10900K") || !strings.Contains(out, "fig4") {
		t.Fatalf("output missing content: %q", out)
	}
}

func TestRunGemmWritesJSON(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run("gemm", true, dir, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sync", "pipelined", "pipelined+cache", "skewed-small-M", "vs sync"} {
		if !strings.Contains(out, want) {
			t.Fatalf("gemm table missing %q in %q", want, out)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_gemm.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"gflops"`, `"pack_share"`, `"reused_a_elems"`, `"speedup_vs_sync"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("BENCH_gemm.json missing %s", want)
		}
	}
}

func TestRunUnknownTarget(t *testing.T) {
	if err := run("fig99", true, "", &bytes.Buffer{}); err == nil {
		t.Fatal("unknown target accepted")
	}
}

func TestRunTrioQuickWithCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run("fig11", true, dir, &buf); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig11a.csv", "fig11b.csv", "fig11c.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
		if !strings.Contains(string(data), "cores") {
			t.Fatalf("%s lacks header", f)
		}
	}
	if !strings.Contains(buf.String(), "ARM v8 Cortex A53") {
		t.Fatal("trio output missing platform")
	}
}

func TestRunFig8Quick(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := run("fig8", true, dir, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ratio >= 1.00x") {
		t.Fatal("fig8 coverage summary missing")
	}
	if _, err := os.Stat(filepath.Join(dir, "fig8d.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestShortName(t *testing.T) {
	var buf bytes.Buffer
	if err := run("fig9", true, "", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Speedup") {
		t.Fatal("fig9 output missing")
	}
}
