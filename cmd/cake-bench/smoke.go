package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/benchgate"
	"repro/internal/cbtheory"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/obs/conformance"
	"repro/internal/obs/reqtrace"
	"repro/internal/platform"
)

// smokeWorkload drives a mixed + resident workload through e so the flight
// recorder, tier histograms, and SLO windows all have real traffic.
func smokeWorkload(e *engine.Engine) error {
	rng := rand.New(rand.NewSource(11))
	mk := func(m, k int) *matrix.Matrix[float32] {
		x := matrix.New[float32](m, k)
		x.Randomize(rng)
		return x
	}
	shapes := [][3]int{{16, 16, 16}, {64, 48, 80}, {220, 180, 240}, {500, 400, 500}}
	for round := 0; round < 2; round++ {
		for _, sh := range shapes {
			m, k, n := sh[0], sh[1], sh[2]
			c := matrix.New[float32](m, n)
			if _, err := engine.GemmScaledFor(e, "smoke", c, mk(m, k), mk(k, n), false, false, 1, 0); err != nil {
				return err
			}
		}
	}
	const id = "smoke-weights"
	if err := engine.RegisterB(e, id, mk(48, 56)); err != nil {
		return err
	}
	if _, err := engine.GemmResidentScaledFor(e, "smoke", matrix.New[float32](32, 56), mk(32, 48), id, false, 1, 0); err != nil {
		return err
	}
	return nil
}

// smokeConformance runs one traced executor GEMM and publishes its report,
// so /debug/conformance.json serves a real document rather than 404.
func smokeConformance(pl *platform.Platform, cores int) error {
	cfg := core.Config{Cores: cores, MC: 8, KC: 128, Alpha: 1, MR: 8, NR: 8, Order: core.OrderAuto}
	rec := obs.NewRecorder(cores, 0)
	ex, err := core.NewExecutor[float32](cfg, nil, core.WithTrace(rec))
	if err != nil {
		return err
	}
	defer ex.Close()
	rng := rand.New(rand.NewSource(12))
	m, k, n := 96, 256, 128
	a, b := matrix.New[float32](m, k), matrix.New[float32](k, n)
	a.Randomize(rng)
	b.Randomize(rng)
	if _, err := ex.Gemm(matrix.New[float32](m, n), a, b); err != nil {
		return err
	}
	rep, err := conformance.Evaluate(conformance.Input{
		Executor: "cake/smoke", M: m, K: k, N: n, ElemBytes: 4,
		Cake:       &cfg,
		Rates:      cbtheory.Rates{ClockHz: pl.ClockHz, FlopsPerCycle: pl.FlopsPerCycle, ElemBytes: 4},
		AvailBWBps: pl.DRAMBW, PrivateCacheBytes: pl.L2Bytes,
		Spans: rec.Spans(), Dropped: rec.Dropped(),
	})
	if err != nil {
		return err
	}
	rep.Publish()
	return nil
}

// smokeCorpus measures the 2-cell micro grid in-process and publishes the
// epoch with its trend verdicts, so /debug/corpus.json serves a real
// document and the cake_corpus metric families are exported. The committed
// store (results/corpus) provides history when present; the fresh epoch is
// judged in memory and NOT appended — the smoke run must leave the
// append-only trajectory untouched.
func smokeCorpus() error {
	epoch, err := experiments.RunCorpus(experiments.CorpusOptions{Runs: 1, Grid: "micro", Quick: true})
	if err != nil {
		return err
	}
	history, err := experiments.OpenCorpusStore("results/corpus").Load()
	if err != nil {
		// A smoke binary may run outside the repo root; judge the fresh
		// epoch alone rather than failing the boot.
		history = nil
	}
	if n := len(history); n > 0 {
		epoch.Seq = history[n-1].Seq + 1
	} else {
		epoch.Seq = 1
	}
	history = append(history, epoch)
	rep, err := benchgate.AnalyzeTrend(history, benchgate.DefaultTrendOptions())
	if err != nil {
		return err
	}
	cells := make([]obs.CorpusCellState, 0, len(rep.Cells))
	for _, c := range rep.Cells {
		cells = append(cells, obs.CorpusCellState{Cell: c.Cell, GFLOPS: c.Latest, Verdict: string(c.Verdict)})
	}
	obs.SetCorpus(map[string]any{"epoch": epoch, "trend": rep}, epoch.Seq, cells)
	return nil
}

// smoke boots the full observability surface the way a serving host would —
// debug HTTP server, engine with the request-lifecycle layer, resident
// operands, and a published conformance report — then holds until
// SIGINT/SIGTERM so an external prober (scripts/debug_smoke.sh, the CI
// debug-smoke job) can curl /metrics and the /debug/*.json endpoints and
// judge the responses. The listen address comes from CAKE_DEBUG_ADDR
// (default localhost:0); the bound address is printed as `SMOKE_ADDR=...`
// only once every endpoint has content behind it.
func smoke(quick bool, csvDir string, w io.Writer) error {
	addr := os.Getenv("CAKE_DEBUG_ADDR")
	if addr == "" {
		addr = "localhost:0"
	}
	obs.EnableMetrics()
	srv, err := obs.Serve(addr)
	if err != nil {
		return err
	}
	defer srv.Close()

	cores := runtime.GOMAXPROCS(0)
	pl := platform.DetectHost(cores)
	e, err := engine.NewEngine(engine.Options{
		Platform: pl, Name: "smoke",
		Trace: reqtrace.Options{
			Objectives: []reqtrace.Objective{
				{Tier: "tiny", Target: 10 * time.Millisecond},
				{Tenant: "smoke", Target: time.Second},
			},
		},
	})
	if err != nil {
		return err
	}
	defer e.Close()

	if err := smokeWorkload(e); err != nil {
		return err
	}
	if err := smokeConformance(pl, cores); err != nil {
		return err
	}
	if err := smokeCorpus(); err != nil {
		return err
	}

	// Readiness line last: every endpoint now has content. The prober
	// parses this exact prefix.
	fmt.Fprintf(w, "SMOKE_ADDR=%s\n", srv.Addr())
	if f, ok := w.(interface{ Sync() error }); ok {
		f.Sync()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Fprintln(w, "smoke: shutting down")
	return nil
}
