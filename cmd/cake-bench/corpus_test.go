package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchgate"
	"repro/internal/experiments"
)

func TestRunCorpusMicroAppendsEpochs(t *testing.T) {
	store := filepath.Join(t.TempDir(), "corpus")
	out := filepath.Join(t.TempDir(), "BENCH_corpus.json")
	args := []string{"-quick", "-grid", "micro", "-runs", "1", "-store", store, "-out", out}

	var buf bytes.Buffer
	if err := runCorpus(args, &buf); err != nil {
		t.Fatalf("first corpus run: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "appended epoch 0001") {
		t.Fatalf("missing append line:\n%s", buf.String())
	}
	epoch, err := experiments.LoadCorpusEpoch(out)
	if err != nil {
		t.Fatalf("BENCH_corpus.json unreadable: %v", err)
	}
	if epoch.Seq != 1 || len(epoch.Cells) != 4 || epoch.Artifact != "corpus" {
		t.Fatalf("epoch = seq %d, %d cells, artifact %q", epoch.Seq, len(epoch.Cells), epoch.Artifact)
	}

	// Second run appends seq 2 and -report renders the trajectory.
	buf.Reset()
	if err := runCorpus(append(args, "-report"), &buf); err != nil {
		t.Fatalf("second corpus run: %v\n%s", err, buf.String())
	}
	history, err := experiments.OpenCorpusStore(store).Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(history) != 2 || history[1].Seq != 2 {
		t.Fatalf("store has %d epochs", len(history))
	}
	report, err := os.ReadFile(filepath.Join(store, "REPORT.md"))
	if err != nil {
		t.Fatalf("REPORT.md: %v", err)
	}
	for _, want := range []string{"# Corpus trajectory report", "tiny/fresh/f32", "small/resident/f32",
		"tiny/batch/f32", "small/batch/f32"} {
		if !strings.Contains(string(report), want) {
			t.Fatalf("REPORT.md missing %q:\n%s", want, report)
		}
	}
}

// writeTrendStore fabricates a deterministic two-epoch corpus history (same
// synthetic host) whose latest small/fresh/f32 value is `latest`.
func writeTrendStore(t *testing.T, dir string, latest float64) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	epoch := func(seq int, gflops float64) string {
		return fmt.Sprintf(`{
  "schema_version": 2, "artifact": "corpus",
  "host": {"hostname": "synthetic", "os": "linux", "arch": "amd64", "cores": 4},
  "seq": %d, "grid": "micro", "quick": true, "protocol": "worst-of-N",
  "cells": [{"shape": "small", "scenario": "fresh", "dtype": "f32",
    "m": 8, "k": 320, "n": 320, "tier": "small", "reps": 60, "runs": 3,
    "gflops": %g, "best_gflops": %g, "median_gflops": %g, "cov": 0.01}]
}`, seq, gflops, gflops, gflops)
	}
	for seq, g := range map[int]float64{1: 100, 2: latest} {
		name := fmt.Sprintf("%04d-synthetic.json", seq)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(epoch(seq, g)), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunCheckJSONCarriesTrend(t *testing.T) {
	artifacts := t.TempDir()
	writeGateArtifacts(t, artifacts, gateGemmJSON, gateTimelineJSON)
	store := filepath.Join(t.TempDir(), "corpus")
	writeTrendStore(t, store, 100) // flat history: trend OK

	var buf bytes.Buffer
	err := runCheck([]string{"-baseline", artifacts, "-candidate", artifacts, "-corpus", store, "-json"}, &buf)
	if err != nil {
		t.Fatalf("check: %v\n%s", err, buf.String())
	}
	var sum benchgate.Summary
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatalf("check -json output not JSON: %v\n%s", err, buf.String())
	}
	if !sum.OK || sum.Regressions != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.Trend == nil || len(sum.Trend.Cells) != 1 {
		t.Fatalf("summary missing trend: %+v", sum.Trend)
	}
	if v := sum.Trend.Cells[0].Verdict; v != benchgate.VerdictOK {
		t.Fatalf("trend verdict = %s, want ok", v)
	}
}

func TestRunCheckTrendRegressionGates(t *testing.T) {
	artifacts := t.TempDir()
	writeGateArtifacts(t, artifacts, gateGemmJSON, gateTimelineJSON)
	store := filepath.Join(t.TempDir(), "corpus")
	writeTrendStore(t, store, 60) // 40% cliff in the history

	var buf bytes.Buffer
	err := runCheck([]string{"-baseline", artifacts, "-candidate", artifacts, "-corpus", store, "-json"}, &buf)
	if err == nil {
		t.Fatalf("trend regression passed the gate:\n%s", buf.String())
	}
	var sum benchgate.Summary
	if jerr := json.Unmarshal(buf.Bytes(), &sum); jerr != nil {
		t.Fatalf("check -json output not JSON despite failure: %v\n%s", jerr, buf.String())
	}
	if sum.OK || sum.Regressions == 0 {
		t.Fatalf("summary = ok=%v regressions=%d, want failing", sum.OK, sum.Regressions)
	}
	if sum.Trend.Cells[0].Verdict != benchgate.VerdictRegressed {
		t.Fatalf("trend verdict = %s", sum.Trend.Cells[0].Verdict)
	}
}

func TestRunCheckTrendAdvisoryReportsWithoutGating(t *testing.T) {
	artifacts := t.TempDir()
	writeGateArtifacts(t, artifacts, gateGemmJSON, gateTimelineJSON)
	store := filepath.Join(t.TempDir(), "corpus")
	writeTrendStore(t, store, 60) // 40% cliff in the history

	var buf bytes.Buffer
	err := runCheck([]string{"-baseline", artifacts, "-candidate", artifacts,
		"-corpus", store, "-trend-advisory", "-json"}, &buf)
	if err != nil {
		t.Fatalf("advisory trend regression failed the gate: %v\n%s", err, buf.String())
	}
	var sum benchgate.Summary
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.OK || sum.Regressions != 0 {
		t.Fatalf("summary = ok=%v regressions=%d, want passing", sum.OK, sum.Regressions)
	}
	// The verdict itself must survive advisory mode: the report still says
	// regressed, only the gate ignores it.
	if sum.Trend.Cells[0].Verdict != benchgate.VerdictRegressed {
		t.Fatalf("trend verdict = %s, want regressed preserved", sum.Trend.Cells[0].Verdict)
	}
	found := false
	for _, f := range sum.Findings {
		if f.File == "corpus-history" && strings.HasPrefix(f.Detail, "advisory:") {
			found = true
			if f.Regression {
				t.Fatalf("advisory finding still marked regression: %+v", f)
			}
		}
	}
	if !found {
		t.Fatalf("no advisory-prefixed corpus finding in %+v", sum.Findings)
	}
}

func TestRunCheckSkipsAbsentCorpusStore(t *testing.T) {
	artifacts := t.TempDir()
	writeGateArtifacts(t, artifacts, gateGemmJSON, gateTimelineJSON)
	var buf bytes.Buffer
	err := runCheck([]string{"-baseline", artifacts, "-candidate", artifacts,
		"-corpus", filepath.Join(t.TempDir(), "nowhere"), "-json"}, &buf)
	if err != nil {
		t.Fatalf("absent store must not fail the gate: %v", err)
	}
	var sum benchgate.Summary
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Trend != nil {
		t.Fatalf("trend = %+v, want nil without a store", sum.Trend)
	}
}

func TestRunCorpusUnknownGridErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := runCorpus([]string{"-grid", "nope", "-store", t.TempDir()}, &buf); err == nil {
		t.Fatal("unknown grid accepted")
	}
}
