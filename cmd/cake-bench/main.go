// cake-bench regenerates the paper's evaluation artifacts (Table 2 and
// Figures 4, 7, 8, 9, 10, 11, 12) from the simulator and platform models,
// printing the same rows/series the paper plots and optionally writing CSVs.
//
// Usage:
//
//	cake-bench [flags] table2|fig4|fig7|fig8|fig9|fig10|fig11|fig12|packshare|gemm|trace|tenant|serve|resident|batch|obs|all
//
// Flags:
//
//	-quick       scale problem sizes down (~10x faster, same curve shapes)
//	-csv DIR     also write each panel as CSV under DIR
//	-clients N   serve: concurrent client streams (default max(8, GOMAXPROCS))
//	-dur D       serve: measurement window per serving mode (default 8s, 2s with -quick)
//
// The gemm target compares the synchronous and pipelined executors on real
// host GEMMs and writes machine-readable BENCH_gemm.json. The trace target
// runs CAKE and GOTO on a matched skewed shape with span recorders
// attached and writes trace.json (Chrome Trace Event Format — open in
// https://ui.perfetto.dev) plus BENCH_bwtimeline.json (the bucketed
// bandwidth timelines whose coefficients of variation test the paper's
// constant-bandwidth claim).
//
// The serve target measures concurrent serving throughput: mixed-size
// client streams through the tiered engine vs a mutex-serialized single
// executor, writing BENCH_serve.json (per-tier GEMMs/s and latency
// percentiles, aggregate speedup, tiny dispatch A/B).
//
// The resident target measures the resident-operand store's serving win:
// activation GEMMs against registered weights served from pre-packed
// panels vs per-call weight packing, writing BENCH_resident.json (per-
// shape GEMMs/s, latency percentiles, and the resident-vs-fresh speedup
// the gate floors).
//
// The batch target measures the batched-dispatch win: N uniform GEMMs
// against a shared weight operand issued as N independent engine requests
// vs one GemmBatch request (one admission, one lease, one B pack), writing
// BENCH_batch.json (per-(shape, batch size) GEMMs/s, latency percentiles,
// and the batched-vs-looped speedup the gate floors).
//
// The obs target measures the request-observability overhead: the same
// serve-mix through an engine with the flight recorder + SLO layer on vs an
// engine with Trace.Disable, writing BENCH_obs.json (per-side GEMMs/s and
// the overhead fraction the gate caps at 2%).
//
// The check subcommand is a noise-aware regression gate: it diffs fresh
// (or -candidate directory) benchmark artifacts against the committed
// baseline in results/baseline and exits non-zero on regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchgate"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/tenant"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "check" {
		if err := runCheck(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "cake-bench check:", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "corpus" {
		if err := runCorpus(os.Args[2:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "cake-bench corpus:", err)
			os.Exit(1)
		}
		return
	}
	quick := flag.Bool("quick", false, "scale problem sizes down for fast runs")
	csvDir := flag.String("csv", "", "directory to write CSV files into")
	flag.IntVar(&serveClients, "clients", 0, "serve: concurrent client streams (0 = max(8, GOMAXPROCS))")
	flag.DurationVar(&serveDur, "dur", 0, "serve: measurement window per mode (0 = 8s, 2s with -quick)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *quick, *csvDir, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "cake-bench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: cake-bench [-quick] [-csv DIR] [-clients N] [-dur D] table2|fig4|fig7|fig8|fig9|fig10|fig11|fig12|packshare|gemm|trace|tenant|serve|resident|batch|obs|all")
	fmt.Fprintln(os.Stderr, "       cake-bench check [-baseline DIR] [-candidate DIR] [-corpus DIR] [-runs N] [-threshold F] [-quick] [-trend-advisory] [-json]")
	fmt.Fprintln(os.Stderr, "       cake-bench corpus [-quick] [-grid full|micro] [-runs N] [-store DIR] [-out FILE] [-report] [-profile]")
}

// runCheck is the benchmark regression gate. With -candidate it compares
// committed artifact directories deterministically (the CI self-check);
// without it, it measures this host fresh — best of -runs runs — and
// judges the result against the baseline with noise-aware thresholds. A
// regression renders its findings and returns an error (exit 1). -update
// instead writes the best-of-runs fresh measurement as the new
// baseline, so baseline and candidate always get the same noise
// treatment.
func runCheck(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	opt := benchgate.DefaultOptions()
	baseline := fs.String("baseline", filepath.Join("results", "baseline"), "baseline artifact directory")
	candidate := fs.String("candidate", "", "candidate artifact directory (default: measure fresh)")
	corpusDir := fs.String("corpus", filepath.Join("results", "corpus"), "corpus history store for trend verdicts (empty/missing = skip)")
	runs := fs.Int("runs", opt.MinRuns, "fresh benchmark runs to take the best of")
	threshold := fs.Float64("threshold", opt.Threshold, "allowed relative GFLOPS drop")
	quick := fs.Bool("quick", true, "scale fresh problem sizes down")
	update := fs.Bool("update", false, "measure fresh and overwrite the baseline instead of judging")
	trendAdvisory := fs.Bool("trend-advisory", false, "report corpus trend verdicts without gating on them (for deterministic self-checks: the trend re-judges the committed history under whatever measurement weather captured it, not the code under test)")
	asJSON := fs.Bool("json", false, "write the machine-readable verdict summary to stdout (human text moves to stderr)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt.Threshold = *threshold
	opt.MinRuns = *runs

	if *update {
		return updateBaseline(*baseline, *quick, opt.MinRuns, w)
	}
	// With -json, w carries only the JSON document; progress and the human
	// rendering go to stderr so scripts can parse stdout directly.
	human := w
	if *asJSON {
		human = os.Stderr
	}
	var res benchgate.Result
	if *candidate != "" {
		r, err := benchgate.CompareDirs(*baseline, *candidate, opt)
		if err != nil {
			return err
		}
		res = r
	} else {
		baseGemm, err := benchgate.LoadGemm(filepath.Join(*baseline, "BENCH_gemm.json"))
		if err != nil {
			return err
		}
		baseTL, err := benchgate.LoadTimeline(filepath.Join(*baseline, "BENCH_bwtimeline.json"))
		if err != nil {
			return err
		}
		cores := runtime.GOMAXPROCS(0)
		fmt.Fprintf(human, "measuring candidate: %d runs on %d cores (quick=%v)\n", opt.MinRuns, cores, *quick)
		candGemm, err := benchgate.FreshGemm(cores, *quick, opt.MinRuns)
		if err != nil {
			return err
		}
		candTL, err := benchgate.FreshTimeline(cores, *quick, opt.MinRuns)
		if err != nil {
			return err
		}
		res = benchgate.Result{Findings: benchgate.CompareGemm(baseGemm, candGemm, opt)}
		res.Findings = append(res.Findings, benchgate.CompareTimeline(baseTL, candTL, opt)...)
		// Serve joined the artifact set later: gate it only when the
		// baseline directory carries one.
		if _, statErr := os.Stat(filepath.Join(*baseline, "BENCH_serve.json")); statErr == nil {
			baseServe, err := benchgate.LoadServe(filepath.Join(*baseline, "BENCH_serve.json"))
			if err != nil {
				return err
			}
			candServe, err := benchgate.FreshServe(cores, baseServe.Clients, *quick, opt.MinRuns)
			if err != nil {
				return err
			}
			res.Findings = append(res.Findings, benchgate.CompareServe(baseServe, candServe, opt)...)
		}
		if _, statErr := os.Stat(filepath.Join(*baseline, "BENCH_resident.json")); statErr == nil {
			baseRes, err := benchgate.LoadResident(filepath.Join(*baseline, "BENCH_resident.json"))
			if err != nil {
				return err
			}
			candRes, err := benchgate.FreshResident(cores, *quick, opt.MinRuns)
			if err != nil {
				return err
			}
			res.Findings = append(res.Findings, benchgate.CompareResident(baseRes, candRes, opt)...)
		}
		if _, statErr := os.Stat(filepath.Join(*baseline, "BENCH_batch.json")); statErr == nil {
			baseBatch, err := benchgate.LoadBatch(filepath.Join(*baseline, "BENCH_batch.json"))
			if err != nil {
				return err
			}
			candBatch, err := benchgate.FreshBatch(cores, *quick, opt.MinRuns)
			if err != nil {
				return err
			}
			res.Findings = append(res.Findings, benchgate.CompareBatch(baseBatch, candBatch, opt)...)
		}
		if _, statErr := os.Stat(filepath.Join(*baseline, "BENCH_obs.json")); statErr == nil {
			baseObs, err := benchgate.LoadObs(filepath.Join(*baseline, "BENCH_obs.json"))
			if err != nil {
				return err
			}
			candObs, err := benchgate.FreshObs(cores, baseObs.Clients, *quick, opt.MinRuns)
			if err != nil {
				return err
			}
			res.Findings = append(res.Findings, benchgate.CompareObs(baseObs, candObs, opt)...)
		}
	}
	// Trend verdicts over the corpus history store: regressions are judged
	// against the curve, not one committed file. An empty or absent store
	// skips the analysis (the trajectory has to start somewhere).
	trend, err := checkTrend(*corpusDir)
	if err != nil {
		return err
	}
	if trend != nil {
		tf := trend.Findings()
		if *trendAdvisory {
			for i := range tf {
				if tf[i].Regression {
					tf[i].Regression = false
					tf[i].Detail = "advisory: " + tf[i].Detail
				}
			}
		}
		res.Findings = append(res.Findings, tf...)
	}
	res.Render(human)
	if *asJSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(benchgate.Summary{
			OK:          res.OK(),
			Regressions: len(res.Regressions()),
			Findings:    res.Findings,
			Trend:       trend,
		}); err != nil {
			return err
		}
	}
	if !res.OK() {
		return fmt.Errorf("%d regression(s) against %s", len(res.Regressions()), *baseline)
	}
	fmt.Fprintln(human, "benchmark gate: OK")
	return nil
}

// checkTrend loads the corpus history and analyzes the trend, returning nil
// (not an error) when the store is absent or empty so checkouts without a
// corpus keep gating on the pairwise artifacts alone.
func checkTrend(dir string) (*benchgate.TrendReport, error) {
	if dir == "" {
		return nil, nil
	}
	history, err := experiments.OpenCorpusStore(dir).Load()
	if err != nil {
		return nil, err
	}
	if len(history) == 0 {
		return nil, nil
	}
	rep, err := benchgate.AnalyzeTrend(history, benchgate.DefaultTrendOptions())
	if err != nil {
		return nil, err
	}
	return &rep, nil
}

// updateBaseline measures this host and writes the conservative bounds —
// worst GFLOPS and highest CoV across runs — into dir: the committed
// reference is a floor every healthy future run can beat, so the gate
// fires only when a candidate's best run falls below even that.
func updateBaseline(dir string, quick bool, runs int, w io.Writer) error {
	cores := runtime.GOMAXPROCS(0)
	fmt.Fprintf(w, "measuring baseline: %d runs on %d cores (quick=%v)\n", runs, cores, quick)
	gemm, err := benchgate.BaselineGemm(cores, quick, runs)
	if err != nil {
		return err
	}
	tl, err := benchgate.BaselineTimeline(cores, quick, runs)
	if err != nil {
		return err
	}
	clients := cores
	if clients < 8 {
		clients = 8
	}
	serve, err := benchgate.BaselineServe(cores, clients, quick, runs)
	if err != nil {
		return err
	}
	resident, err := benchgate.BaselineResident(cores, quick, runs)
	if err != nil {
		return err
	}
	batch, err := benchgate.BaselineBatch(cores, quick, runs)
	if err != nil {
		return err
	}
	obsRes, err := benchgate.BaselineObs(cores, clients, quick, runs)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, art := range []struct {
		name string
		v    any
	}{
		{"BENCH_gemm.json", gemm},
		{"BENCH_bwtimeline.json", tl},
		{"BENCH_serve.json", serve},
		{"BENCH_resident.json", resident},
		{"BENCH_batch.json", batch},
		{"BENCH_obs.json", obsRes},
	} {
		data, err := json.MarshalIndent(art.v, "", "  ")
		if err != nil {
			return err
		}
		path := filepath.Join(dir, art.name)
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintln(w, "wrote", path)
	}
	return nil
}

func run(target string, quick bool, csvDir string, w io.Writer) error {
	targets := map[string]func(bool, string, io.Writer) error{
		"table2":    table2,
		"fig4":      fig4,
		"packshare": packshare,
		"gemm":      gemmBench,
		"trace":     traceBench,
		"tenant":    tenants,
		"serve":     serveBench,
		"resident":  residentBench,
		"batch":     batchBench,
		"obs":       obsBench,
		"smoke":     smoke,
		"fig7":      fig7,
		"fig8":      fig8,
		"fig9":      fig9,
		"fig10":     func(q bool, d string, w io.Writer) error { return trio(platform.IntelI9(), "fig10", q, d, w) },
		"fig11":     func(q bool, d string, w io.Writer) error { return trio(platform.ARMCortexA53(), "fig11", q, d, w) },
		"fig12":     func(q bool, d string, w io.Writer) error { return trio(platform.AMDRyzen9(), "fig12", q, d, w) },
	}
	if target == "all" {
		for _, name := range []string{"table2", "fig4", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "packshare", "gemm", "trace", "tenant"} {
			if err := targets[name](quick, csvDir, w); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	fn, ok := targets[target]
	if !ok {
		return fmt.Errorf("unknown target %q", target)
	}
	return fn(quick, csvDir, w)
}

// packshare reproduces the Section 5.2.1 observation on the real machine:
// packing's share of execution time for square vs skewed shapes.
func packshare(_ bool, _ string, w io.Writer) error {
	rows, err := experiments.PackingOverhead(1, experiments.DefaultPackShapes())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== packshare: packing overhead by matrix shape (Section 5.2.1, this host) ==")
	fmt.Fprintf(w, "%-8s %-18s %-12s %-10s\n", "shape", "MxKxN", "pack share", "GFLOP/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %4dx%4dx%4d     %6.1f%%      %6.2f\n",
			r.Name, r.M, r.K, r.N, 100*r.PackShare, r.GFLOPS)
	}
	fmt.Fprintln(w)
	return nil
}

// gemmBench compares the synchronous and pipelined executors on real host
// GEMMs (square and skewed small-M shape classes) and writes the rows as
// machine-readable BENCH_gemm.json — into csvDir when given, else the
// current directory.
func gemmBench(quick bool, csvDir string, w io.Writer) error {
	rows, err := experiments.GemmBench(runtime.GOMAXPROCS(0), quick)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== gemm: sync vs pipelined executor on this host ==")
	fmt.Fprintf(w, "%-16s %-16s %-9s %-7s %-12s %-12s %-10s %-8s\n",
		"shape", "mode", "GFLOP/s", "pack%", "reused A", "reused B", "overlap", "vs sync")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-16s %-9.2f %-7.1f %-12d %-12d %-10s %.2fx\n",
			r.Shape, r.Mode, r.GFLOPS, 100*r.PackShare, r.ReusedAElems, r.ReusedBElems,
			time.Duration(r.OverlapNanos).Round(time.Microsecond), r.SpeedupVsSync)
	}
	fmt.Fprintln(w)
	path := "BENCH_gemm.json"
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path = filepath.Join(csvDir, path)
	}
	data, err := json.MarshalIndent(benchgate.GemmFile{
		Envelope: experiments.NewEnvelope("gemm"),
		Cores:    runtime.GOMAXPROCS(0),
		Rows:     rows,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// traceBench runs CAKE and GOTO on the same skewed shape with tracing
// enabled and writes trace.json (Perfetto-viewable per-worker lanes) and
// BENCH_bwtimeline.json (bucketed DRAM-bandwidth series with
// mean/peak/CoV per executor) — into csvDir when given, else the current
// directory.
func traceBench(quick bool, csvDir string, w io.Writer) error {
	res, err := experiments.TraceBench(runtime.GOMAXPROCS(0), quick)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== trace: CAKE vs GOTO bandwidth timeline, %dx%dx%d on %d cores ==\n",
		res.M, res.K, res.N, res.Cores)
	fmt.Fprintf(w, "%-8s %-9s %-8s %-12s %-12s %-8s %-8s\n",
		"exec", "GFLOP/s", "spans", "mean GB/s", "peak GB/s", "CoV", "dropped")
	for _, t := range []experiments.ExecTimeline{res.Cake, res.Goto} {
		fmt.Fprintf(w, "%-8s %-9.2f %-8d %-12.2f %-12.2f %-8.3f %-8d\n",
			t.Executor, t.GFLOPS, t.Spans, t.MeanGBps, t.PeakGBps, t.CoV, t.Dropped)
	}
	fmt.Fprintln(w)

	dir := "."
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		dir = csvDir
	}
	tf, err := os.Create(filepath.Join(dir, "trace.json"))
	if err != nil {
		return err
	}
	werr := obs.WriteChromeTrace(tf,
		obs.Process{Name: "cake", Rec: res.CakeRec},
		obs.Process{Name: "goto", Rec: res.GotoRec})
	if cerr := tf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_bwtimeline.json"), append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s and %s (open trace.json in https://ui.perfetto.dev)\n\n",
		filepath.Join(dir, "trace.json"), filepath.Join(dir, "BENCH_bwtimeline.json"))
	return nil
}

// serveClients/serveDur are the serve target's knobs, bound to flags in
// main(); their zero values mean "pick a sensible default".
var (
	serveClients int
	serveDur     time.Duration
)

// serveBench measures concurrent serving throughput — mixed-size client
// streams through the tiered engine vs the mutex-serialized baseline — and
// writes machine-readable BENCH_serve.json into csvDir (or the current
// directory).
func serveBench(quick bool, csvDir string, w io.Writer) error {
	clients := serveClients
	if clients <= 0 {
		clients = runtime.GOMAXPROCS(0)
		if clients < 8 {
			clients = 8
		}
	}
	dur := serveDur
	if dur <= 0 {
		dur = 8 * time.Second
		if quick {
			dur = 2 * time.Second
		}
	}
	res, err := experiments.ServeBench(runtime.GOMAXPROCS(0), clients, dur, quick)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== serve: engine vs serialized executor, %d clients (%s), %s per mode ==\n",
		res.Clients, res.ClientMix, dur)
	fmt.Fprintf(w, "%-12s %-7s %10s %12s %12s %12s %12s %9s\n",
		"mode", "tier", "requests", "GEMMs/s", "p50 µs", "p95 µs", "p99 µs", "GFLOP/s")
	for _, row := range res.Tiers {
		fmt.Fprintf(w, "%-12s %-7s %10d %12.1f %12.1f %12.1f %12.1f %9.3f\n",
			row.Mode, row.Tier, row.Requests, row.GemmsPerSec,
			row.P50Micros, row.P95Micros, row.P99Micros, row.GFLOPS)
	}
	fmt.Fprintf(w, "engine %.1f GEMMs/s (%.2f GFLOP/s) vs serialized %.1f GEMMs/s (%.2f GFLOP/s): %.1fx\n",
		res.EngineGemmsPer, res.EngineGFLOPS, res.SerializedGemms, res.SerializedGFLOPS, res.Speedup)
	fmt.Fprintf(w, "tiny dispatch A/B: direct %.1fµs vs full-CAKE %.1fµs p50; leases %d new / %d reused, %d queued\n\n",
		res.TinyDirectP50Micros, res.TinyCakeP50Micros, res.LeaseNew, res.LeaseReused, res.QueuedTotal)

	path := "BENCH_serve.json"
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path = filepath.Join(csvDir, path)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// residentBench measures fresh-vs-resident serving per weight shape and
// writes machine-readable BENCH_resident.json into csvDir (or the current
// directory).
func residentBench(quick bool, csvDir string, w io.Writer) error {
	res, err := experiments.ResidentBench(runtime.GOMAXPROCS(0), quick)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== resident: pre-packed weight panels vs per-call packing ==")
	fmt.Fprintf(w, "%-22s %-7s %12s %12s %9s %12s %12s\n",
		"shape", "tier", "fresh/s", "resident/s", "speedup", "fresh p50µs", "res p50µs")
	for _, row := range res.Rows {
		mark := " "
		if row.Gate {
			mark = "*"
		}
		fmt.Fprintf(w, "%-22s %-7s %12.1f %12.1f %8.2fx%s %12.1f %12.1f\n",
			row.Shape, row.Tier, row.FreshGemmsPerSec, row.ResidentGemmsPerSec,
			row.Speedup, mark, row.FreshP50Micros, row.ResidentP50Micros)
	}
	fmt.Fprintf(w, "store: %d hits, %d evictions, %.1f MiB resident, %.1f MiB pack traffic avoided (* = gated shape)\n\n",
		res.Hits, res.Evictions, float64(res.ResidentBytes)/(1<<20), float64(res.AvoidedPackBytes)/(1<<20))

	path := "BENCH_resident.json"
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path = filepath.Join(csvDir, path)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// batchBench measures the batched-dispatch win — N shared-weight GEMMs as N
// engine requests vs one GemmBatch — and writes machine-readable
// BENCH_batch.json into csvDir (or the current directory).
func batchBench(quick bool, csvDir string, w io.Writer) error {
	res, err := experiments.BatchBench(runtime.GOMAXPROCS(0), quick)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== batch: one-lease batched dispatch vs per-call requests ==")
	fmt.Fprintf(w, "%-24s %-7s %12s %12s %9s %12s %12s\n",
		"shape", "tier", "looped/s", "batched/s", "speedup", "loop p50µs", "batch p50µs")
	for _, row := range res.Rows {
		mark := " "
		if row.Gate {
			mark = "*"
		}
		fmt.Fprintf(w, "%-24s %-7s %12.1f %12.1f %8.2fx%s %12.1f %12.1f\n",
			row.Shape, row.Tier, row.LoopedGemmsPerSec, row.BatchGemmsPerSec,
			row.Speedup, mark, row.LoopedP50Micros, row.BatchP50Micros)
	}
	fmt.Fprintf(w, "batched calls: %d, shared-B packs elided: %d (* = gated row)\n\n",
		res.BatchCalls, res.SharedBPacks)

	path := "BENCH_batch.json"
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path = filepath.Join(csvDir, path)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// obsBench measures the request-observability overhead A/B — flight
// recorder + SLO layer on vs off on the same serve-mix — and writes
// machine-readable BENCH_obs.json into csvDir (or the current directory).
func obsBench(quick bool, csvDir string, w io.Writer) error {
	clients := serveClients
	if clients <= 0 {
		clients = runtime.GOMAXPROCS(0)
		if clients < 8 {
			clients = 8
		}
	}
	dur := serveDur
	rounds := 3
	if dur <= 0 {
		dur = 2 * time.Second
		if quick {
			dur, rounds = time.Second, 2
		}
	}
	res, err := experiments.ObsBench(runtime.GOMAXPROCS(0), clients, dur, rounds)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== obs: request-observability overhead, %d clients (%s), %s per side x%d rounds ==\n",
		res.Clients, res.ClientMix, dur, res.Rounds)
	fmt.Fprintf(w, "recorder on  %12.1f GEMMs/s (%d records committed)\n",
		res.RecorderOnGemmsPerSec, res.RecorderRecords)
	fmt.Fprintf(w, "recorder off %12.1f GEMMs/s\n", res.RecorderOffGemmsPerSec)
	fmt.Fprintf(w, "overhead %.2f%% (gate ceiling %.0f%%)\n\n",
		100*res.OverheadFrac, 100*benchgate.MaxObsOverhead)

	path := "BENCH_obs.json"
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path = filepath.Join(csvDir, path)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// tenants runs the Section 6.1 multi-tenant partition on the Intel model.
func tenants(_ bool, _ string, w io.Writer) error {
	pl := platform.IntelI9()
	jobs := []tenant.Job{
		{Name: "training", M: 4096, K: 4096, N: 4096},
		{Name: "serving", M: 2048, K: 2048, N: 2048},
		{Name: "batch", M: 1024, K: 1024, N: 1024},
	}
	plan, err := tenant.PlanTenants(pl, jobs)
	if err != nil {
		return err
	}
	results, err := tenant.Simulate(plan)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== tenant: §6.1 multi-tenant partition on %s ==\n", pl.Name)
	fmt.Fprintf(w, "%-10s %-6s %-10s %-10s %-12s %-12s %-8s\n",
		"tenant", "cores", "LLC MiB", "BW GB/s", "co-run GF/s", "isolated", "share")
	for i, as := range plan.Assignments {
		r := results[i]
		fmt.Fprintf(w, "%-10s %-6d %-10.1f %-10.2f %-12.1f %-12.1f %.1f%%\n",
			as.Job.Name, as.Cores, float64(as.LLCBytes)/(1<<20), as.DRAMBW/1e9,
			r.GFLOPS, r.Isolated, 100*r.Share())
	}
	fmt.Fprintln(w)
	return nil
}

func table2(_ bool, _ string, w io.Writer) error {
	fmt.Fprintln(w, "== table2: CPUs used in CAKE evaluation ==")
	for _, row := range experiments.Table2() {
		fmt.Fprintln(w, strings.Join(row, " | "))
	}
	fmt.Fprintln(w)
	return nil
}

func fig4(_ bool, csvDir string, w io.Writer) error {
	r := experiments.Fig4()
	r.Render(w)
	return writeCSV(csvDir, r.ID, r.CSV)
}

func fig7(quick bool, csvDir string, w io.Writer) error {
	intelSize, armSize := 10000, 3000
	if quick {
		intelSize, armSize = 4000, 1500
	}
	a, err := experiments.Fig7a(platform.IntelI9(), intelSize)
	if err != nil {
		return err
	}
	a.Render(w)
	if err := writeCSV(csvDir, a.ID, a.CSV); err != nil {
		return err
	}
	b, err := experiments.Fig7b(platform.ARMCortexA53(), armSize)
	if err != nil {
		return err
	}
	b.Render(w)
	return writeCSV(csvDir, b.ID, b.CSV)
}

func fig8(quick bool, csvDir string, w io.Writer) error {
	maxDim, step := 8000, 1000
	if quick {
		maxDim, step = 4000, 1000
	}
	grids, err := experiments.Fig8(platform.IntelI9(), maxDim, step)
	if err != nil {
		return err
	}
	for _, g := range grids {
		g.Render(w)
		if err := writeCSV(csvDir, g.ID, g.CSV); err != nil {
			return err
		}
	}
	return nil
}

func fig9(quick bool, csvDir string, w io.Writer) error {
	sizes := []int{1000, 2000, 3000}
	if quick {
		sizes = []int{1000, 2000}
	}
	for _, pl := range []*platform.Platform{platform.IntelI9(), platform.ARMCortexA53()} {
		r, err := experiments.Fig9(pl, sizes)
		if err != nil {
			return err
		}
		r.Render(w)
		if err := writeCSV(csvDir, r.ID+"-"+shortName(pl), r.CSV); err != nil {
			return err
		}
	}
	return nil
}

func trio(pl *platform.Platform, id string, quick bool, csvDir string, w io.Writer) error {
	ts := experiments.PaperTrioSizes(pl)
	if quick {
		ts.Size /= 5
	}
	bw, tp, internal, err := experiments.FigTrio(pl, id, ts)
	if err != nil {
		return err
	}
	for _, r := range []*experiments.Result{bw, tp, internal} {
		r.Render(w)
		if err := writeCSV(csvDir, r.ID, r.CSV); err != nil {
			return err
		}
	}
	return nil
}

func shortName(pl *platform.Platform) string {
	return strings.ToLower(strings.Fields(pl.Name)[0])
}

func writeCSV(dir, name string, fn func(io.Writer)) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	fn(f)
	return nil
}
