package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"repro/internal/benchgate"
	"repro/internal/experiments"
)

// runCorpus is the `cake-bench corpus` subcommand: it measures the declarative
// shape×scenario×dtype grid under the worst-of-N protocol, writes the unified
// BENCH_corpus.json envelope at -out, and appends the epoch to the
// append-only history store at -store (results/corpus by default) as
// NNNN-<rev>.json. With -profile it captures CPU/heap pprof profiles per
// scenario into the epoch's directory; with -report it renders the trend
// analysis of the whole history (sparkline trajectories, worst regressions
// first, top pprof frame deltas vs the prior epoch) to <store>/REPORT.md.
func runCorpus(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("corpus", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "scale problem sizes down for fast runs")
	grid := fs.String("grid", "full", "grid to run: full | micro (4-cell CI smoke)")
	runs := fs.Int("runs", 3, "runs per cell in the worst-of-N protocol")
	store := fs.String("store", filepath.Join("results", "corpus"), "append-only epoch store directory")
	out := fs.String("out", "BENCH_corpus.json", "unified envelope output path")
	report := fs.Bool("report", false, "render the trajectory report to <store>/REPORT.md")
	profile := fs.Bool("profile", false, "capture CPU/heap pprof profiles per scenario into the epoch directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	st := experiments.OpenCorpusStore(*store)
	opt := experiments.CorpusOptions{
		Cores: runtime.GOMAXPROCS(0),
		Runs:  *runs,
		Grid:  *grid,
		Quick: *quick,
	}
	if *profile {
		dir, err := st.NextProfileDir(experiments.GitRev())
		if err != nil {
			return err
		}
		opt.ProfileDir = dir
	}
	fmt.Fprintf(w, "== corpus: %s grid, worst-of-%d per cell (quick=%v) ==\n", *grid, opt.Runs, *quick)
	epoch, err := experiments.RunCorpus(opt)
	if err != nil {
		return err
	}
	path, err := st.Append(epoch)
	if err != nil {
		return err
	}
	renderCorpus(w, epoch)
	fmt.Fprintf(w, "appended epoch %04d -> %s\n", epoch.Seq, path)

	data, err := json.MarshalIndent(epoch, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", *out)

	if *report {
		if err := writeCorpusReport(st, *store, w); err != nil {
			return err
		}
	}
	return nil
}

// renderCorpus prints the epoch's cells as an aligned table.
func renderCorpus(w io.Writer, e *experiments.CorpusEpoch) {
	fmt.Fprintf(w, "%-28s %-7s %5s %5s  %9s %9s %9s %7s\n",
		"cell", "tier", "reps", "runs", "worst GF", "best GF", "median", "CoV")
	for _, c := range e.Cells {
		fmt.Fprintf(w, "%-28s %-7s %5d %5d  %9.3f %9.3f %9.3f %7.3f\n",
			c.Key(), c.Tier, c.Reps, c.Runs, c.GFLOPS, c.BestGFLOPS, c.MedianGFLOPS, c.CoV)
	}
	if len(e.Profiles) > 0 {
		fmt.Fprintf(w, "profiles: %s\n", strings.Join(e.Profiles, ", "))
	}
}

// writeCorpusReport analyzes the full history and writes <storeDir>/REPORT.md.
func writeCorpusReport(st *experiments.CorpusStore, storeDir string, w io.Writer) error {
	history, err := st.Load()
	if err != nil {
		return err
	}
	rep, err := benchgate.AnalyzeTrend(history, benchgate.DefaultTrendOptions())
	if err != nil {
		return err
	}
	prof := profileDeltaSection(st, history)
	var buf strings.Builder
	benchgate.WriteTrendMarkdown(&buf, rep, prof)
	path := filepath.Join(storeDir, "REPORT.md")
	if err := os.WriteFile(path, []byte(buf.String()), 0o644); err != nil {
		return err
	}
	counts := rep.Counts()
	fmt.Fprintf(w, "wrote %s (%d cells: %d regressed, %d noisy, %d new, %d ok, %d improved)\n",
		path, len(rep.Cells), counts[benchgate.VerdictRegressed], counts[benchgate.VerdictNoisy],
		counts[benchgate.VerdictNewCell], counts[benchgate.VerdictOK], counts[benchgate.VerdictImproved])
	return nil
}

// profileDeltaSection summarizes top pprof frame deltas between the two
// newest profiled epochs, as a markdown section for the report. Epochs
// without captured profiles are skipped; fewer than one profiled epoch
// yields an empty section, one yields absolute top frames.
func profileDeltaSection(st *experiments.CorpusStore, history []*experiments.CorpusEpoch) string {
	var profiled []*experiments.CorpusEpoch
	for _, e := range history {
		if len(e.Profiles) > 0 {
			profiled = append(profiled, e)
		}
	}
	if len(profiled) == 0 {
		return ""
	}
	const topN = 8
	var b strings.Builder
	cur := profiled[len(profiled)-1]
	curDir := st.ProfileDir(cur.Seq, cur.GitRev)
	if len(profiled) == 1 {
		fmt.Fprintf(&b, "## Profiles (epoch %04d)\n\n", cur.Seq)
		for _, name := range cur.Profiles {
			sum, err := experiments.ReadProfileSummary(filepath.Join(curDir, name))
			if err != nil || len(sum.Frames) == 0 {
				continue
			}
			fmt.Fprintf(&b, "**%s** (%s, %s) top frames:\n\n", name, sum.SampleType, sum.Unit)
			for _, f := range sum.Top(topN) {
				fmt.Fprintf(&b, "- `%s` %d\n", f.Name, f.Value)
			}
			fmt.Fprintln(&b)
		}
		return b.String()
	}
	prev := profiled[len(profiled)-2]
	prevDir := st.ProfileDir(prev.Seq, prev.GitRev)
	fmt.Fprintf(&b, "## Profile deltas (epoch %04d vs %04d)\n\n", cur.Seq, prev.Seq)
	for _, name := range cur.Profiles {
		curSum, err := experiments.ReadProfileSummary(filepath.Join(curDir, name))
		if err != nil {
			continue
		}
		prevSum, err := experiments.ReadProfileSummary(filepath.Join(prevDir, name))
		if err != nil {
			// No prior capture of this profile: report absolute top frames.
			prevSum = &experiments.ProfileSummary{}
		}
		deltas := experiments.DiffProfiles(prevSum, curSum, topN)
		if len(deltas) == 0 {
			continue
		}
		fmt.Fprintf(&b, "**%s** (%s, %s):\n\n", name, curSum.SampleType, curSum.Unit)
		fmt.Fprintln(&b, "| frame | prev | cur | delta |")
		fmt.Fprintln(&b, "|---|---:|---:|---:|")
		for _, d := range deltas {
			fmt.Fprintf(&b, "| `%s` | %d | %d | %+d |\n", d.Name, d.Prev, d.Cur, d.Difference)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
