// pmbw is a parallel memory-bandwidth scan in the spirit of the tool the
// paper uses (Bingmann's pmbw) to measure internal bandwidth between the
// last-level cache / DRAM and the cores (Figures 10c, 11c, 12c): for each
// thread count it streams a working set concurrently on all threads and
// reports the aggregate sustained bandwidth. With -fit it also fits the
// piecewise-linear saturation curve the simulator's platform models use.
// With -sizes it sweeps working-set sizes instead, exposing cache cliffs.
//
// Usage:
//
//	pmbw [-max-threads N] [-size BYTES] [-dur DURATION] [-fit] [-sizes]
//
// Choose -size below the LLC to measure cache bandwidth, or well above it
// to measure DRAM bandwidth.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/membench"
)

func main() {
	maxThreads := flag.Int("max-threads", runtime.GOMAXPROCS(0), "highest thread count to scan")
	size := flag.Int("size", 8<<20, "per-thread working set in bytes")
	dur := flag.Duration("dur", 300*time.Millisecond, "measurement duration per point")
	fit := flag.Bool("fit", false, "fit a platform.BWCurve to the thread scan")
	sizes := flag.Bool("sizes", false, "sweep working-set sizes (single thread) instead of threads")
	flag.Parse()

	if err := run(*maxThreads, *size, *dur, *fit, *sizes); err != nil {
		fmt.Fprintln(os.Stderr, "pmbw:", err)
		os.Exit(1)
	}
}

func run(maxThreads, size int, dur time.Duration, fit, sweepSizes bool) error {
	if sweepSizes {
		var ws []int
		for s := 16 << 10; s <= size; s *= 2 {
			ws = append(ws, s)
		}
		pts, err := membench.ScanWorkingSet(ws, dur)
		if err != nil {
			return err
		}
		fmt.Printf("# pmbw-style working-set sweep, 1 thread, %v per point\n", dur)
		fmt.Printf("%-12s %-12s\n", "bytes", "GB/s")
		for _, p := range pts {
			fmt.Printf("%-12d %-12.2f\n", p.WorkingSet, p.BytesPerSec/1e9)
		}
		return nil
	}

	fmt.Printf("# pmbw-style scan: %d B per thread, %v per point\n", size, dur)
	pts, err := membench.ScanThreads(maxThreads, size, dur)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-14s %-14s\n", "threads", "GB/s total", "GB/s per thr")
	for _, p := range pts {
		fmt.Printf("%-8d %-14.2f %-14.2f\n", p.Threads, p.BytesPerSec/1e9, p.BytesPerSec/1e9/float64(p.Threads))
	}
	if fit {
		curve, err := membench.FitBWCurve(pts)
		if err != nil {
			return err
		}
		fmt.Printf("# fitted BWCurve: %.2f GB/s/core to %d cores, then %.2f GB/s/core\n",
			curve.SlopePre/1e9, curve.Knee, curve.SlopePost/1e9)
	}
	return nil
}
