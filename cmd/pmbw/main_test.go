package main

import (
	"testing"
	"time"
)

func TestRunThreadScanWithFit(t *testing.T) {
	if err := run(2, 1<<20, 10*time.Millisecond, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSizeSweep(t *testing.T) {
	if err := run(1, 256<<10, 10*time.Millisecond, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadArgs(t *testing.T) {
	if err := run(0, 1<<20, time.Millisecond, false, false); err == nil {
		t.Fatal("maxThreads=0 accepted")
	}
}
