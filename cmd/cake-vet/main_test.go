package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListIncludesSuite(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"atomicfield", "hotpathalloc", "leasebalance", "spanbytes"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-checks", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 (stderr: %s)", code, errb.String())
	}
}

// TestSeededFixtureFails drives the binary end-to-end over a testdata
// package with known violations and requires the go-vet exit contract:
// diagnostics on stdout, exit code 1.
func TestSeededFixtureFails(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "spanbytes", "../../internal/analysis/testdata/src/spanbytes"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "does not set Bytes") {
		t.Errorf("diagnostics missing from stdout:\n%s", out.String())
	}
}
