package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListIncludesSuite(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"atomicfield", "hotpathalloc", "leasebalance", "spanbytes", "hotcover", "escapecheck"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	for _, flag := range []string{"-checks", "-run"} {
		var out, errb bytes.Buffer
		if code := run([]string{flag, "nope"}, &out, &errb); code != 2 {
			t.Fatalf("%s nope: exit %d, want 2 (stderr: %s)", flag, code, errb.String())
		}
	}
}

// TestSeededFixtureFails drives the binary end-to-end over a testdata
// package with known violations and requires the go-vet exit contract:
// diagnostics on stdout, exit code 1.
func TestSeededFixtureFails(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-checks", "spanbytes", "../../internal/analysis/testdata/src/spanbytes"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "does not set Bytes") {
		t.Errorf("diagnostics missing from stdout:\n%s", out.String())
	}
}

// TestJSONSummaryFailing: -json still obeys the exit contract and leads with
// a grep-able "ok" key, the shape scripts/verify.sh and CI consume.
func TestJSONSummaryFailing(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-run", "spanbytes", "-json", "../../internal/analysis/testdata/src/spanbytes"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	var sum jsonSummary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("stdout is not a summary: %v\n%s", err, out.String())
	}
	if sum.OK || sum.Violations == 0 || len(sum.Findings) == 0 {
		t.Errorf("summary should report violations: %+v", sum)
	}
	if !strings.Contains(out.String(), `"ok": false`) {
		t.Errorf(`summary not grep-able for "ok": false`+":\n%s", out.String())
	}
	for _, f := range sum.Findings {
		if f.Analyzer == "" || f.File == "" || f.Line == 0 || f.Message == "" || f.Severity == "" {
			t.Errorf("finding missing fields: %+v", f)
		}
	}
}

// TestJSONSummaryEmptyCorpus: a hotcover-only run against an empty corpus
// store is clean (fresh clones must never fail), reports the skip as a
// notice, and greps as "ok": true.
func TestJSONSummaryEmptyCorpus(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-run", "hotcover", "-json", "-corpus", filepath.Join(t.TempDir(), "none"),
		"../../internal/analysis/testdata/src/hotcover"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), `"ok": true`) {
		t.Errorf(`summary not grep-able for "ok": true`+":\n%s", out.String())
	}
	var sum jsonSummary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if len(sum.Notices) == 0 || !strings.Contains(strings.Join(sum.Notices, "\n"), "no CPU profiles") {
		t.Errorf("empty-store notice missing from summary: %+v", sum.Notices)
	}
}

// TestEscapeLogCache: the first escapecheck run writes the raw compiler
// output to -escape-log; the second parses the cached bytes instead of
// rebuilding, and says so.
func TestEscapeLogCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the compiler; skipped in -short")
	}
	logPath := filepath.Join(t.TempDir(), "escape.log")
	target := "../../internal/analysis/testdata/src/hotcover" // compiles clean, no hot anns needed

	var out1, err1 bytes.Buffer
	if code := run([]string{"-run", "escapecheck", "-escape-log", logPath, target}, &out1, &err1); code != 0 {
		t.Fatalf("capture run: exit %d\nstderr: %s", code, err1.String())
	}
	info, err := os.Stat(logPath)
	if err != nil || info.Size() == 0 {
		t.Fatalf("escape log not written: %v", err)
	}

	var out2, err2 bytes.Buffer
	if code := run([]string{"-run", "escapecheck", "-escape-log", logPath, target}, &out2, &err2); code != 0 {
		t.Fatalf("cached run: exit %d\nstderr: %s", code, err2.String())
	}
	if !strings.Contains(err2.String(), "reusing cached diagnostics") {
		t.Errorf("cached run did not report reuse:\n%s", err2.String())
	}
}
