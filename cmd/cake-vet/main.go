// Command cake-vet runs the repo's invariant analyzers (internal/analysis)
// over a set of packages and exits non-zero if any invariant is violated.
// It is the mechanical half of the concurrency/hot-path story: -race
// catches the interleavings that happen to fire, cake-vet rejects the
// patterns that make them possible.
//
// Usage:
//
//	cake-vet [-checks atomicfield,hotpathalloc,...] [-list] [packages]
//
// Packages default to ./... relative to the current directory. The exit
// code is 0 when clean, 1 when diagnostics were reported, 2 on usage or
// load errors — the same contract as go vet, so scripts/verify.sh and CI
// wire it in as one more fast-fail step.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cake-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cake-vet [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := analysis.Suite()
	if *checks != "" {
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "cake-vet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "cake-vet: %v\n", err)
		return 2
	}
	diags, err := analysis.Check(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "cake-vet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "cake-vet: %d violation(s) in %d package(s) checked\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
