// Command cake-vet runs the repo's invariant analyzers (internal/analysis)
// over a set of packages and exits non-zero if any invariant is violated.
// It is the mechanical half of the concurrency/hot-path story: -race
// catches the interleavings that happen to fire, cake-vet rejects the
// patterns that make them possible. Two passes are profile-guided:
// hotcover replays the committed corpus profiles (results/corpus) and
// demands //cake:hotpath coverage on functions that are hot in production
// scenarios; escapecheck cross-checks annotated functions against the
// compiler's own escape analysis (go build -gcflags='-m -m').
//
// Usage:
//
//	cake-vet [-run hotcover,escapecheck,...] [-json] [-list] [packages]
//
// Packages default to ./... relative to the current directory. The exit
// code is 0 when clean, 1 when violations were reported, 2 on usage or
// load errors — the same contract as go vet, so scripts/verify.sh and CI
// wire it in as one more fast-fail step. Advisory findings (stale
// annotations, cannot-inline notes) never affect the exit code; text mode
// hides them unless -advisory is set, -json always carries them with
// severity "advisory".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// profileGuidedNames are the passes built from external inputs (corpus
// profiles, compiler diagnostics) rather than the static Suite.
var profileGuidedNames = []string{"hotcover", "escapecheck"}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cake-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var sel string
	fs.StringVar(&sel, "run", "", "comma-separated analyzer names to run (default: all)")
	fs.StringVar(&sel, "checks", "", "alias for -run (kept for older scripts)")
	jsonOut := fs.Bool("json", false, "emit a machine-readable summary on stdout (mirrors benchgate's shape)")
	advisory := fs.Bool("advisory", false, "print advisory findings in text mode (always present in -json)")
	corpus := fs.String("corpus", filepath.Join("results", "corpus"), "corpus profile store hotcover aggregates")
	hotThreshold := fs.Float64("hot-threshold", analysis.DefaultHotShare, "per-scenario flat-share above which hotcover demands //cake:hotpath")
	escapeLog := fs.String("escape-log", "", "cached -gcflags='-m -m' output for escapecheck: read if the file exists, else captured and written there")
	list := fs.Bool("list", false, "list available analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: cake-vet [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-14s %s\n", "hotcover",
			"requires //cake:hotpath (or -exempt) on functions hot in committed corpus CPU profiles; flags stale annotations as advisories")
		fmt.Fprintf(stdout, "%-14s %s\n", "escapecheck",
			"fails //cake:hotpath functions that heap-allocate per the compiler's escape analysis (go build -gcflags='-m -m')")
		return 0
	}

	names := make([]string, 0, len(analysis.Suite())+len(profileGuidedNames))
	if sel != "" {
		for _, n := range strings.Split(sel, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	} else {
		for _, a := range analysis.Suite() {
			names = append(names, a.Name)
		}
		names = append(names, profileGuidedNames...)
	}

	// Escape diagnostics resolve relative paths against the directory the
	// build ran in; go list reports absolute directories. Anchor both at the
	// absolute working directory so positions line up.
	root, err := filepath.Abs(".")
	if err != nil {
		fmt.Fprintf(stderr, "cake-vet: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var analyzers []*analysis.Analyzer
	var notices []string
	for _, name := range names {
		switch name {
		case "hotcover":
			stats, err := analysis.LoadHotStats(filepath.Join(root, *corpus), *hotThreshold)
			if err != nil {
				fmt.Fprintf(stderr, "cake-vet: %v\n", err)
				return 2
			}
			notices = append(notices, stats.Notices...)
			analyzers = append(analyzers, analysis.NewHotCover(stats))
		case "escapecheck":
			log, notice, err := escapeLogFor(*escapeLog, root, patterns)
			if err != nil {
				fmt.Fprintf(stderr, "cake-vet: %v\n", err)
				return 2
			}
			if notice != "" {
				notices = append(notices, notice)
			}
			analyzers = append(analyzers, analysis.NewEscapeCheck(log))
		default:
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "cake-vet: unknown analyzer %q (try -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	// A selection of purely syntax-driven passes (the profile-guided ones)
	// skips `go list -export -deps` and the typechecker entirely.
	syntaxOnly := true
	for _, a := range analyzers {
		if !a.Syntax {
			syntaxOnly = false
			break
		}
	}
	var pkgs []*analysis.Package
	if syntaxOnly {
		pkgs, err = analysis.LoadSyntax(root, patterns...)
	} else {
		pkgs, err = analysis.Load(root, patterns...)
	}
	if err != nil {
		fmt.Fprintf(stderr, "cake-vet: %v\n", err)
		return 2
	}
	diags, err := analysis.Check(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "cake-vet: %v\n", err)
		return 2
	}

	violations := 0
	for _, d := range diags {
		if d.Severity != analysis.SeverityAdvisory {
			violations++
		}
	}

	if *jsonOut {
		writeJSON(stdout, root, names, pkgs, diags, notices, violations)
	} else {
		for _, n := range notices {
			fmt.Fprintf(stderr, "cake-vet: %s\n", n)
		}
		for _, d := range diags {
			if d.Severity == analysis.SeverityAdvisory && !*advisory {
				continue
			}
			fmt.Fprintln(stdout, d)
		}
		if violations > 0 {
			fmt.Fprintf(stderr, "cake-vet: %d violation(s) in %d package(s) checked\n", violations, len(pkgs))
		}
	}
	if violations > 0 {
		return 1
	}
	return 0
}

// escapeLogFor returns the escape log for escapecheck: parsed from the cache
// file when it exists, otherwise captured live (and written to the cache
// path when one was given, so CI captures once per job).
func escapeLogFor(path, root string, patterns []string) (*analysis.EscapeLog, string, error) {
	if path != "" {
		if data, err := os.ReadFile(path); err == nil {
			log, perr := analysis.ParseEscapeDiagnostics(data, root)
			return log, fmt.Sprintf("escapecheck: reusing cached diagnostics from %s", path), perr
		}
	}
	log, raw, err := analysis.CaptureEscapeDiagnostics(root, patterns...)
	if err != nil {
		return nil, "", err
	}
	if path != "" {
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			return nil, "", fmt.Errorf("write escape log %s: %w", path, err)
		}
	}
	return log, "", nil
}

// jsonFinding is one diagnostic in the -json summary.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Severity string `json:"severity"`
}

// jsonSummary mirrors benchgate.Summary's shape: a leading "ok" key scripts
// can grep, counts, and the full finding list.
type jsonSummary struct {
	OK         bool          `json:"ok"`
	Violations int           `json:"violations"`
	Advisories int           `json:"advisories"`
	Packages   int           `json:"packages"`
	Analyzers  []string      `json:"analyzers"`
	Findings   []jsonFinding `json:"findings"`
	Notices    []string      `json:"notices,omitempty"`
}

func writeJSON(w io.Writer, root string, names []string, pkgs []*analysis.Package, diags []analysis.Diagnostic, notices []string, violations int) {
	s := jsonSummary{
		OK:         violations == 0,
		Violations: violations,
		Advisories: len(diags) - violations,
		Packages:   len(pkgs),
		Analyzers:  names,
		Findings:   []jsonFinding{},
		Notices:    notices,
	}
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		sev := d.Severity
		if sev == "" {
			sev = analysis.SeverityError
		}
		s.Findings = append(s.Findings, jsonFinding{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
			Severity: sev,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s)
}
