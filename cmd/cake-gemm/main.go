// cake-gemm runs a single matrix multiplication with the CAKE or GOTO
// driver, either for real on the host (timed, verified against the naive
// reference) or on the architecture simulator of a Table 2 platform.
//
// Usage:
//
//	cake-gemm [-m M] [-k K] [-n N] [-algo cake|goto] [-cores P] \
//	          [-sim Intel|AMD|ARM] [-verify]
//
// Without -sim the multiplication runs on this machine and reports wall
// time and GFLOP/s. With -sim it runs on the named platform model and
// reports simulated cycles, throughput, DRAM traffic and stalls.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gotoalg"
	"repro/internal/matrix"
	"repro/internal/platform"

	cake "repro"
)

func main() {
	m := flag.Int("m", 1000, "rows of A and C")
	k := flag.Int("k", 1000, "cols of A / rows of B")
	n := flag.Int("n", 1000, "cols of B and C")
	algo := flag.String("algo", "cake", "algorithm: cake or goto")
	cores := flag.Int("cores", 0, "worker count (0 = all)")
	simName := flag.String("sim", "", "simulate on a Table 2 platform (Intel, AMD, ARM) instead of running")
	verify := flag.Bool("verify", false, "check the result against the naive reference (real runs)")
	flag.Parse()

	if err := run(*m, *k, *n, *algo, *cores, *simName, *verify); err != nil {
		fmt.Fprintln(os.Stderr, "cake-gemm:", err)
		os.Exit(1)
	}
}

func run(m, k, n int, algo string, cores int, simName string, verify bool) error {
	if simName != "" {
		return simulate(m, k, n, algo, cores, simName)
	}
	return real(m, k, n, algo, cores, verify)
}

func simulate(m, k, n int, algo string, cores int, simName string) error {
	pl, err := platform.ByName(simName)
	if err != nil {
		return err
	}
	if cores == 0 {
		cores = pl.Cores
	}
	var met interface {
		ThroughputGFLOPS(float64) float64
		AvgDRAMBW(float64) float64
	}
	switch algo {
	case "cake":
		mm, cfg, err := experiments.SimCake(pl, cores, m, k, n)
		if err != nil {
			return err
		}
		fmt.Printf("plan: %v\n", cfg)
		fmt.Printf("cycles: %d  blocks: %d  stallDRAM: %d  stallLLC: %d\n",
			mm.Cycles, mm.Blocks, mm.StallDRAM, mm.StallInternal)
		met = mm
	case "goto":
		mm, cfg, err := experiments.SimGoto(pl, cores, m, k, n)
		if err != nil {
			return err
		}
		fmt.Printf("plan: %v\n", cfg)
		fmt.Printf("cycles: %d  blocks: %d  stallDRAM: %d  stallLLC: %d\n",
			mm.Cycles, mm.Blocks, mm.StallDRAM, mm.StallInternal)
		met = mm
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	fmt.Printf("platform: %s @ %d cores\n", pl.Name, cores)
	fmt.Printf("throughput: %.1f GFLOP/s   avg DRAM BW: %.2f GB/s\n",
		met.ThroughputGFLOPS(pl.ClockHz), met.AvgDRAMBW(pl.ClockHz)/1e9)
	return nil
}

func real(m, k, n int, algo string, cores int, verify bool) error {
	host := cake.Host()
	if cores > 0 {
		host.Cores = cores
	}
	rng := rand.New(rand.NewSource(1))
	a := matrix.New[float32](m, k)
	b := matrix.New[float32](k, n)
	c := matrix.New[float32](m, n)
	a.Randomize(rng)
	b.Randomize(rng)

	var elapsed time.Duration
	switch algo {
	case "cake":
		cfg, err := core.Plan(host, m, k, n, 4)
		if err != nil {
			return err
		}
		fmt.Printf("plan: %v\n", cfg)
		start := time.Now()
		if _, err := core.Gemm(c, a, b, cfg); err != nil {
			return err
		}
		elapsed = time.Since(start)
	case "goto":
		cfg, err := gotoalg.Plan(host, 4)
		if err != nil {
			return err
		}
		fmt.Printf("plan: %v\n", cfg)
		start := time.Now()
		if _, err := gotoalg.Gemm(c, a, b, cfg); err != nil {
			return err
		}
		elapsed = time.Since(start)
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}

	flops := matrix.GemmFlops(m, n, k)
	fmt.Printf("%s %dx%dx%d on %d cores: %v  (%.2f GFLOP/s)\n",
		algo, m, k, n, host.Cores, elapsed, flops/elapsed.Seconds()/1e9)

	if verify {
		want := matrix.New[float32](m, n)
		matrix.NaiveGemm(want, a, b)
		if !c.AlmostEqual(want, k, 1e-5) {
			return fmt.Errorf("verification FAILED: max diff %g", c.MaxAbsDiff(want))
		}
		fmt.Println("verified against naive reference")
	}
	return nil
}
