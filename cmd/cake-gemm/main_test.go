package main

import "testing"

func TestRealRunVerified(t *testing.T) {
	if err := run(64, 48, 56, "cake", 1, "", true); err != nil {
		t.Fatal(err)
	}
	if err := run(64, 48, 56, "goto", 1, "", true); err != nil {
		t.Fatal(err)
	}
}

func TestSimulatedRun(t *testing.T) {
	for _, algo := range []string{"cake", "goto"} {
		if err := run(512, 512, 512, algo, 0, "ARM", false); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestBadInputs(t *testing.T) {
	if err := run(64, 64, 64, "strassen", 1, "", false); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run(64, 64, 64, "strassen", 0, "Intel", false); err == nil {
		t.Fatal("unknown simulated algorithm accepted")
	}
	if err := run(64, 64, 64, "cake", 0, "RISCV", false); err == nil {
		t.Fatal("unknown platform accepted")
	}
}
