package cake

import "testing"

func TestHostEnvOverrides(t *testing.T) {
	t.Setenv("CAKE_DRAM_BW", "21.3e9")
	t.Setenv("CAKE_CLOCK_HZ", "4.2e9")
	h := hostPlatform()
	if h.DRAMBW != 21.3e9 {
		t.Fatalf("DRAMBW = %g, want 21.3e9", h.DRAMBW)
	}
	if h.ClockHz != 4.2e9 {
		t.Fatalf("ClockHz = %g, want 4.2e9", h.ClockHz)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("overridden host invalid: %v", err)
	}
}

func TestHostEnvOverridesIgnoreGarbage(t *testing.T) {
	base := func() (float64, float64) {
		t.Setenv("CAKE_DRAM_BW", "")
		t.Setenv("CAKE_CLOCK_HZ", "")
		h := hostPlatform()
		return h.DRAMBW, h.ClockHz
	}
	wantBW, wantHz := base()
	for _, bad := range []string{"", "nonsense", "-3e9", "0", "  "} {
		t.Setenv("CAKE_DRAM_BW", bad)
		t.Setenv("CAKE_CLOCK_HZ", bad)
		h := hostPlatform()
		if h.DRAMBW != wantBW || h.ClockHz != wantHz {
			t.Fatalf("env %q changed platform: bw %g hz %g", bad, h.DRAMBW, h.ClockHz)
		}
	}
	// Whitespace around a valid number is tolerated.
	t.Setenv("CAKE_DRAM_BW", " 30e9 ")
	if h := hostPlatform(); h.DRAMBW != 30e9 {
		t.Fatalf("trimmed value not applied: %g", h.DRAMBW)
	}
}

func TestEnvFloat(t *testing.T) {
	if _, ok := envFloat("CAKE_TEST_UNSET_VAR"); ok {
		t.Fatal("unset var reported ok")
	}
	t.Setenv("CAKE_TEST_VAR", "2.5")
	if v, ok := envFloat("CAKE_TEST_VAR"); !ok || v != 2.5 {
		t.Fatalf("envFloat = %g,%v", v, ok)
	}
}
